//! Functional simulation: executes graphs numerically with CIM int8
//! semantics and checks them against the f32 reference — the role the
//! PyTorch comparison plays in §5.1 ("By comparing the execution result
//! with the PyTorch framework, we verify the effectiveness of our
//! compilation results").
//!
//! Weights are generated deterministically per node (seeded by node id),
//! standing in for trained checkpoints. In [`Precision::Int8`] mode every
//! MVM/MMM runs through symmetric int8 quantization with i32
//! accumulation — exactly what a compute-mode CIM array does — while
//! non-CIM operators (softmax, norms) stay in f32 on the function unit.

use std::collections::HashMap;
use std::fmt;

use cmswitch_graph::{Graph, GraphError, NodeId, OpKind};
use cmswitch_tensor::quant::{qmatmul, QuantizedTensor};
use cmswitch_tensor::{im2col, ops, Tensor, TensorError};

/// Numeric mode of the functional simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// Full f32 reference (the "PyTorch" role).
    F32,
    /// CIM semantics: int8 operands, i32 accumulation for MVM/MMM.
    Int8,
}

/// Error type of functional execution.
#[derive(Debug, Clone, PartialEq)]
pub enum FunctionalError {
    /// Graph structure problem.
    Graph(GraphError),
    /// Numeric/shape problem.
    Tensor(TensorError),
    /// An input tensor is missing.
    MissingInput(NodeId),
}

impl fmt::Display for FunctionalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FunctionalError::Graph(e) => write!(f, "graph error: {e}"),
            FunctionalError::Tensor(e) => write!(f, "tensor error: {e}"),
            FunctionalError::MissingInput(id) => write!(f, "missing input for {id}"),
        }
    }
}

impl std::error::Error for FunctionalError {}

impl From<GraphError> for FunctionalError {
    fn from(e: GraphError) -> Self {
        FunctionalError::Graph(e)
    }
}
impl From<TensorError> for FunctionalError {
    fn from(e: TensorError) -> Self {
        FunctionalError::Tensor(e)
    }
}

/// Deterministic weight tensor for a node (checkpoint substitute).
pub fn node_weight(id: NodeId, shape: Vec<usize>) -> Tensor {
    Tensor::random(shape, 0x5EED_0000 + id.index() as u64)
}

/// Executes `graph`, returning every node's output tensor.
///
/// # Errors
///
/// Returns [`FunctionalError::MissingInput`] if `inputs` lacks a graph
/// input, and propagates shape/numeric errors.
pub fn execute(
    graph: &Graph,
    inputs: &HashMap<NodeId, Tensor>,
    precision: Precision,
) -> Result<HashMap<NodeId, Tensor>, FunctionalError> {
    graph.validate()?;
    let mut values: HashMap<NodeId, Tensor> = HashMap::new();
    for &id in &graph.topo_order() {
        let node = graph.node(id)?;
        let get = |nid: NodeId| -> Result<&Tensor, FunctionalError> {
            values.get(&nid).ok_or(FunctionalError::MissingInput(nid))
        };
        let out = match &node.op {
            OpKind::Input { .. } => inputs
                .get(&id)
                .cloned()
                .ok_or(FunctionalError::MissingInput(id))?,
            OpKind::Linear { out_features } => {
                let x = get(node.inputs[0])?;
                let in_features = *x.shape().dims().last().unwrap_or(&1);
                let rows = x.numel() / in_features;
                let x2 = x.reshape(vec![rows, in_features])?;
                let w = node_weight(id, vec![in_features, *out_features]);
                let y = mat(&x2, &w, precision)?;
                y.reshape(node.shape.clone())?
            }
            OpKind::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
                groups,
            } => {
                let x = get(node.inputs[0])?;
                conv_grouped(
                    id,
                    x,
                    *out_channels,
                    *kernel,
                    *stride,
                    *padding,
                    *groups,
                    precision,
                )?
            }
            OpKind::BatchMatMul { transpose_rhs } => {
                let a = get(node.inputs[0])?.clone();
                let b = get(node.inputs[1])?.clone();
                batch_matmul(&a, &b, *transpose_rhs, precision)?
            }
            OpKind::Softmax => ops::softmax_lastdim(get(node.inputs[0])?)?,
            OpKind::LayerNorm => ops::layer_norm_lastdim(get(node.inputs[0])?, 1e-5)?,
            OpKind::Act(a) => {
                let x = get(node.inputs[0])?;
                match a {
                    cmswitch_graph::Activation::Relu => ops::relu(x),
                    cmswitch_graph::Activation::Gelu => ops::gelu(x),
                    cmswitch_graph::Activation::Silu => ops::silu(x),
                }
            }
            OpKind::Add => ops::add(get(node.inputs[0])?, get(node.inputs[1])?)?,
            OpKind::Mul => ops::mul(get(node.inputs[0])?, get(node.inputs[1])?)?,
            OpKind::MaxPool2d { kernel, stride } => {
                ops::max_pool2d(get(node.inputs[0])?, *kernel, *stride)?
            }
            OpKind::AvgPool2d { kernel, stride } => {
                ops::avg_pool2d(get(node.inputs[0])?, *kernel, *stride)?
            }
            OpKind::GlobalAvgPool => {
                let x = get(node.inputs[0])?;
                let [n, c, h, w] = [
                    x.shape().dims()[0],
                    x.shape().dims()[1],
                    x.shape().dims()[2],
                    x.shape().dims()[3],
                ];
                let mut out = vec![0.0f32; n * c];
                for b in 0..n {
                    for ch in 0..c {
                        let base = (b * c + ch) * h * w;
                        out[b * c + ch] =
                            x.data()[base..base + h * w].iter().sum::<f32>() / (h * w) as f32;
                    }
                }
                Tensor::from_vec(vec![n, c], out)?
            }
            OpKind::Embedding { vocab, dim } => {
                let idx = get(node.inputs[0])?;
                let table = node_weight(id, vec![*vocab, *dim]);
                let mut out = Vec::with_capacity(idx.numel() * dim);
                for &v in idx.data() {
                    let row = (v.abs() as usize) % vocab;
                    out.extend_from_slice(&table.data()[row * dim..(row + 1) * dim]);
                }
                Tensor::from_vec(node.shape.clone(), out)?
            }
            OpKind::Flatten | OpKind::Reshape { .. } => {
                get(node.inputs[0])?.reshape(node.shape.clone())?
            }
        };
        values.insert(id, out);
    }
    Ok(values)
}

fn mat(a: &Tensor, b: &Tensor, precision: Precision) -> Result<Tensor, TensorError> {
    match precision {
        Precision::F32 => ops::matmul(a, b),
        Precision::Int8 => qmatmul(
            &QuantizedTensor::quantize(a),
            &QuantizedTensor::quantize(b),
        ),
    }
}

fn batch_matmul(
    a: &Tensor,
    b: &Tensor,
    transpose_rhs: bool,
    precision: Precision,
) -> Result<Tensor, TensorError> {
    let (a3, b3) = (to3d(a)?, to3d(b)?);
    let batch = a3.shape().dims()[0];
    let (m, k) = (a3.shape().dims()[1], a3.shape().dims()[2]);
    let mut out: Vec<f32> = Vec::new();
    let mut n_out = 0;
    for i in 0..batch {
        let asl = slice3d(&a3, i)?;
        let mut bsl = slice3d(&b3, i)?;
        if transpose_rhs {
            bsl = ops::transpose2d(&bsl)?;
        }
        let y = mat(&asl, &bsl, precision)?;
        n_out = y.shape().dims()[1];
        out.extend_from_slice(y.data());
    }
    let _ = (m, k);
    Tensor::from_vec(vec![batch, a3.shape().dims()[1], n_out], out)
}

fn to3d(t: &Tensor) -> Result<Tensor, TensorError> {
    match t.shape().rank() {
        2 => t.reshape(vec![1, t.shape().dims()[0], t.shape().dims()[1]]),
        3 => Ok(t.clone()),
        r => Err(TensorError::RankMismatch {
            op: "batch_matmul",
            expected: 3,
            actual: r,
        }),
    }
}

fn slice3d(t: &Tensor, idx: usize) -> Result<Tensor, TensorError> {
    let (m, n) = (t.shape().dims()[1], t.shape().dims()[2]);
    let base = idx * m * n;
    Tensor::from_vec(vec![m, n], t.data()[base..base + m * n].to_vec())
}

#[allow(clippy::too_many_arguments)]
fn conv_grouped(
    id: NodeId,
    x: &Tensor,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    groups: usize,
    precision: Precision,
) -> Result<Tensor, FunctionalError> {
    let [n, c, h, w] = [
        x.shape().dims()[0],
        x.shape().dims()[1],
        x.shape().dims()[2],
        x.shape().dims()[3],
    ];
    let cg = c / groups;
    let og = out_channels / groups;
    let weight = node_weight(id, vec![out_channels, cg, kernel, kernel]);
    let mut group_outs: Vec<Tensor> = Vec::with_capacity(groups);
    for g in 0..groups {
        // Slice input channels [g*cg, (g+1)*cg) and weights [g*og, (g+1)*og).
        let xg = slice_channels(x, g * cg, cg)?;
        let wg = Tensor::from_vec(
            vec![og, cg, kernel, kernel],
            weight.data()[g * og * cg * kernel * kernel..(g + 1) * og * cg * kernel * kernel]
                .to_vec(),
        )?;
        let yg = match precision {
            Precision::F32 => im2col::conv2d_via_matmul(&xg, &wg, stride, padding)?,
            Precision::Int8 => {
                // Quantized im2col path: the exact CIM execution recipe.
                let patches = im2col::im2col(&xg, kernel, stride, padding)?;
                let wmat = im2col::weights_to_matrix(&wg)?;
                let flat = qmatmul(
                    &QuantizedTensor::quantize(&patches),
                    &QuantizedTensor::quantize(&wmat),
                )?;
                let dims = im2col::conv_matmul_dims(n, cg, h, w, og, kernel, stride, padding)?;
                rearrange_conv_out(&flat, n, og, dims.oh, dims.ow)?
            }
        };
        group_outs.push(yg);
    }
    concat_channels(&group_outs)
}

fn slice_channels(x: &Tensor, start: usize, count: usize) -> Result<Tensor, TensorError> {
    let [n, c, h, w] = [
        x.shape().dims()[0],
        x.shape().dims()[1],
        x.shape().dims()[2],
        x.shape().dims()[3],
    ];
    let mut out = Vec::with_capacity(n * count * h * w);
    for b in 0..n {
        let base = b * c * h * w;
        out.extend_from_slice(&x.data()[base + start * h * w..base + (start + count) * h * w]);
    }
    Tensor::from_vec(vec![n, count, h, w], out)
}

fn concat_channels(parts: &[Tensor]) -> Result<Tensor, FunctionalError> {
    let [n, _, h, w] = [
        parts[0].shape().dims()[0],
        parts[0].shape().dims()[1],
        parts[0].shape().dims()[2],
        parts[0].shape().dims()[3],
    ];
    let total_c: usize = parts.iter().map(|p| p.shape().dims()[1]).sum();
    let mut out = Vec::with_capacity(n * total_c * h * w);
    for b in 0..n {
        for p in parts {
            let pc = p.shape().dims()[1];
            let base = b * pc * h * w;
            out.extend_from_slice(&p.data()[base..base + pc * h * w]);
        }
    }
    Ok(Tensor::from_vec(vec![n, total_c, h, w], out)?)
}

fn rearrange_conv_out(
    flat: &Tensor,
    n: usize,
    oc: usize,
    oh: usize,
    ow: usize,
) -> Result<Tensor, TensorError> {
    let mut out = vec![0.0f32; n * oc * oh * ow];
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (b * oh + oy) * ow + ox;
                for o in 0..oc {
                    out[((b * oc + o) * oh + oy) * ow + ox] = flat.data()[row * oc + o];
                }
            }
        }
    }
    Tensor::from_vec(vec![n, oc, oh, ow], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmswitch_graph::GraphBuilder;

    fn run_both(graph: &Graph, inputs: HashMap<NodeId, Tensor>) -> (Tensor, Tensor) {
        let f32_out = execute(graph, &inputs, Precision::F32).unwrap();
        let int8_out = execute(graph, &inputs, Precision::Int8).unwrap();
        let out_id = graph.outputs()[0];
        (f32_out[&out_id].clone(), int8_out[&out_id].clone())
    }

    #[test]
    fn mlp_int8_close_to_f32() {
        let g = cmswitch_models::mlp::mlp(2, &[32, 64, 16]).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(NodeId(0), Tensor::random(vec![2, 32], 1));
        let (exact, quant) = run_both(&g, inputs);
        // Two chained int8 matmuls over K=32/64 with unit-range data: the
        // relative error stays small.
        let scale = exact.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(
            exact.max_abs_diff(&quant).unwrap() < 0.15 * scale.max(1.0),
            "diff {} scale {scale}",
            exact.max_abs_diff(&quant).unwrap()
        );
    }

    #[test]
    fn conv_and_pool_graph_executes() {
        let mut b = GraphBuilder::new("cnn");
        let x = b.input("x", vec![1, 3, 12, 12]);
        let c = b.conv2d("conv", x, 8, 3, 1, 1).unwrap();
        let r = b.relu("relu", c).unwrap();
        let p = b.max_pool2d("pool", r, 2, 2).unwrap();
        let f = b.flatten("flat", p).unwrap();
        b.linear("fc", f, 10).unwrap();
        let g = b.finish().unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(NodeId(0), Tensor::random(vec![1, 3, 12, 12], 2));
        let (exact, quant) = run_both(&g, inputs);
        assert_eq!(exact.shape().dims(), &[1, 10]);
        let scale = exact.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(exact.max_abs_diff(&quant).unwrap() < 0.2 * scale.max(1.0));
    }

    #[test]
    fn depthwise_conv_matches_direct_reference() {
        let mut b = GraphBuilder::new("dw");
        let x = b.input("x", vec![1, 4, 8, 8]);
        b.conv2d_grouped("dw", x, 4, 3, 1, 1, 4).unwrap();
        let g = b.finish().unwrap();
        let mut inputs = HashMap::new();
        let xt = Tensor::random(vec![1, 4, 8, 8], 3);
        inputs.insert(NodeId(0), xt.clone());
        let out = execute(&g, &inputs, Precision::F32).unwrap();
        // Cross-check group 0 against a direct conv on the slice.
        let w = node_weight(NodeId(1), vec![4, 1, 3, 3]);
        let x0 = slice_channels(&xt, 0, 1).unwrap();
        let w0 = Tensor::from_vec(vec![1, 1, 3, 3], w.data()[..9].to_vec()).unwrap();
        let direct = ops::conv2d(&x0, &w0, 1, 1).unwrap();
        let full = &out[&NodeId(1)];
        let got = slice_channels(full, 0, 1).unwrap();
        assert!(direct.allclose(&got, 1e-4));
    }

    #[test]
    fn attention_chain_executes() {
        let mut b = GraphBuilder::new("attn");
        let q = b.input("q", vec![2, 4, 8]);
        let k = b.input("k", vec![2, 4, 8]);
        let v = b.input("v", vec![2, 4, 8]);
        let s = b.matmul("qk", q, k, true).unwrap();
        let p = b.softmax("sm", s).unwrap();
        b.matmul("sv", p, v, false).unwrap();
        let g = b.finish().unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(NodeId(0), Tensor::random(vec![2, 4, 8], 4));
        inputs.insert(NodeId(1), Tensor::random(vec![2, 4, 8], 5));
        inputs.insert(NodeId(2), Tensor::random(vec![2, 4, 8], 6));
        let out = execute(&g, &inputs, Precision::F32).unwrap();
        let res = &out[&g.outputs()[0]];
        assert_eq!(res.shape().dims(), &[2, 4, 8]);
        // Cross-check batch 0 against the fused attention reference
        // (modulo the 1/sqrt(d) scaling the graph omits).
        let q0 = slice3d(&to3d(&inputs[&NodeId(0)]).unwrap(), 0).unwrap();
        let k0 = slice3d(&to3d(&inputs[&NodeId(1)]).unwrap(), 0).unwrap();
        let kt = ops::transpose2d(&k0).unwrap();
        let scores = ops::matmul(&q0, &kt).unwrap();
        let probs = ops::softmax_lastdim(&scores).unwrap();
        let v0 = slice3d(&to3d(&inputs[&NodeId(2)]).unwrap(), 0).unwrap();
        let expect = ops::matmul(&probs, &v0).unwrap();
        let got = slice3d(res, 0).unwrap();
        assert!(expect.allclose(&got, 1e-4));
    }

    #[test]
    fn missing_input_is_reported() {
        let g = cmswitch_models::mlp::mlp(1, &[8, 8]).unwrap();
        let r = execute(&g, &HashMap::new(), Precision::F32);
        assert!(matches!(r, Err(FunctionalError::MissingInput(_))));
    }

    #[test]
    fn embedding_lookup_rows() {
        let mut b = GraphBuilder::new("emb");
        let x = b.input("ids", vec![1, 3]);
        b.embedding("embed", x, 10, 4).unwrap();
        let g = b.finish().unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(
            NodeId(0),
            Tensor::from_vec(vec![1, 3], vec![0.0, 5.0, 9.0]).unwrap(),
        );
        let out = execute(&g, &inputs, Precision::F32).unwrap();
        let table = node_weight(NodeId(1), vec![10, 4]);
        let res = &out[&NodeId(1)];
        assert_eq!(res.shape().dims(), &[1, 3, 4]);
        assert_eq!(&res.data()[0..4], &table.data()[0..4]);
        assert_eq!(&res.data()[4..8], &table.data()[20..24]);
    }
}
