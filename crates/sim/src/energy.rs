//! Energy estimation for meta-operator flows.
//!
//! The paper argues dual-mode switching "can significantly boost overall
//! system performance **and energy efficiency**" (§3.2) but reports only
//! latency; this module makes the energy claim checkable. Per-event
//! energies follow the usual CIM-accelerator accounting (ISAAC/PRIME
//! style, normalized units): in-array MACs are cheap, on-chip SRAM/eDRAM
//! accesses cost ~an order of magnitude more per byte, and off-chip DRAM
//! traffic costs ~two orders more — which is exactly why keeping
//! activations in memory-mode arrays saves energy.

use cmswitch_arch::DualModeArch;
use cmswitch_metaop::{Flow, MemLoc, Stmt};

/// Per-event energy coefficients in picojoules (normalized; defaults are
/// representative of 8-bit CIM accelerators).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Energy per in-array MAC.
    pub pj_per_mac: f64,
    /// Energy per byte moved to/from memory-mode CIM arrays or the
    /// on-chip buffer.
    pub pj_per_onchip_byte: f64,
    /// Energy per byte moved to/from off-chip main memory.
    pub pj_per_dram_byte: f64,
    /// Energy per array-cell-write byte (weight/operand loads).
    pub pj_per_write_byte: f64,
    /// Energy per array mode switch (driver reconfiguration).
    pub pj_per_switch: f64,
    /// Energy per vector-unit FLOP.
    pub pj_per_vector_flop: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            pj_per_mac: 0.05,
            pj_per_onchip_byte: 1.0,
            pj_per_dram_byte: 60.0,
            pj_per_write_byte: 2.0,
            pj_per_switch: 10.0,
            pj_per_vector_flop: 0.5,
        }
    }
}

/// Energy breakdown of a flow execution, picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// In-array compute energy.
    pub compute_pj: f64,
    /// On-chip data movement (memory-mode arrays + buffer).
    pub onchip_pj: f64,
    /// Off-chip DRAM traffic (streamed inputs beyond on-chip supply,
    /// write-backs, weight fetches).
    pub dram_pj: f64,
    /// Array write energy (weight/operand loading).
    pub write_pj: f64,
    /// Mode-switch energy.
    pub switch_pj: f64,
    /// Vector function-unit energy.
    pub vector_pj: f64,
}

impl EnergyReport {
    /// Adds `other` into this report, component by component — the
    /// reduction used when summing per-model (or per-tenant) reports
    /// into a workload/chip total.
    pub fn absorb(&mut self, other: &EnergyReport) {
        self.compute_pj += other.compute_pj;
        self.onchip_pj += other.onchip_pj;
        self.dram_pj += other.dram_pj;
        self.write_pj += other.write_pj;
        self.switch_pj += other.switch_pj;
        self.vector_pj += other.vector_pj;
    }

    /// Total energy, picojoules.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj
            + self.onchip_pj
            + self.dram_pj
            + self.write_pj
            + self.switch_pj
            + self.vector_pj
    }
}

/// Estimates the energy of executing `flow` on `arch`.
///
/// Streamed operator inputs are split between on-chip supply (memory-mode
/// arrays, proportional to their share of the operator's bandwidth) and
/// DRAM — the same resource model the timing simulator uses, so latency
/// and energy winners agree for the right reason.
pub fn estimate(flow: &Flow, arch: &DualModeArch, model: &EnergyModel) -> EnergyReport {
    let mut report = EnergyReport::default();
    visit(flow.stmts(), arch, model, &mut report);
    report
}

fn visit(stmts: &[Stmt], arch: &DualModeArch, model: &EnergyModel, report: &mut EnergyReport) {
    for stmt in stmts {
        match stmt {
            Stmt::Parallel(body) => visit(body, arch, model, report),
            other => accumulate_stmt(other, arch, model, report),
        }
    }
}

/// Charges one non-`parallel` statement's energy into `report`.
///
/// This is the per-event accounting both [`estimate`] and the event
/// engine ([`crate::engine`]) use — energy is schedule-invariant, so
/// attributing the same statements through the same function guarantees
/// the two agree component-for-component regardless of how the events
/// were scheduled. `parallel` blocks are containers, not events; passing
/// one charges nothing.
pub fn accumulate_stmt(
    stmt: &Stmt,
    arch: &DualModeArch,
    model: &EnergyModel,
    report: &mut EnergyReport,
) {
    match stmt {
        Stmt::Parallel(_) => {}
        Stmt::Switch { arrays, .. } => {
            report.switch_pj += arrays.len() as f64 * model.pj_per_switch;
        }
        Stmt::Compute(c) => {
            let macs = (c.units * c.m * c.k * c.n) as f64;
            report.compute_pj += macs * model.pj_per_mac;
            // Input stream: memory-mode arrays supply their bandwidth
            // share, the rest comes over the DRAM link.
            let mem_bw =
                (c.mem_in_arrays.len() + c.mem_out_arrays.len()) as f64 * arch.d_cim();
            let total_bw = mem_bw + arch.d_main();
            let onchip_share = if total_bw > 0.0 { mem_bw / total_bw } else { 0.0 };
            let moved = (c.in_bytes + c.out_bytes) as f64;
            report.onchip_pj += moved * onchip_share * model.pj_per_onchip_byte;
            report.dram_pj += moved * (1.0 - onchip_share) * model.pj_per_dram_byte;
            let operand = (c.units * c.k * c.n) as f64;
            if c.weight_static {
                // Static weights are fetched from DRAM once per
                // segment, regardless of how many replicas the arrays
                // hold (the cell-write energy of replication is
                // charged at the LoadWeights statement).
                report.dram_pj += operand * model.pj_per_dram_byte;
            } else {
                // Runtime operand written into the arrays.
                report.write_pj += operand * model.pj_per_write_byte;
                report.onchip_pj += operand * onchip_share * model.pj_per_onchip_byte;
                report.dram_pj +=
                    operand * (1.0 - onchip_share) * model.pj_per_dram_byte;
            }
        }
        Stmt::LoadWeights(w) => {
            report.write_pj += w.bytes as f64 * model.pj_per_write_byte;
        }
        Stmt::Mem(m) => {
            let bytes = m.bytes as f64;
            match m.loc {
                MemLoc::Main => report.dram_pj += bytes * model.pj_per_dram_byte,
                MemLoc::Buffer | MemLoc::CimArrays(_) => {
                    report.onchip_pj += bytes * model.pj_per_onchip_byte
                }
            }
        }
        Stmt::Vector(v) => {
            report.vector_pj += v.flops as f64 * model.pj_per_vector_flop;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmswitch_arch::presets;
    use cmswitch_core::Session;

    fn flow_of(dims: &[usize]) -> (Flow, DualModeArch) {
        let arch = presets::tiny();
        let g = cmswitch_models::mlp::mlp(2, dims).unwrap();
        let p = Session::builder(arch.clone())
            .build()
            .compile_graph(&g)
            .unwrap();
        (p.flow, arch)
    }

    #[test]
    fn breakdown_sums_to_total() {
        let (flow, arch) = flow_of(&[128, 256, 64]);
        let r = estimate(&flow, &arch, &EnergyModel::default());
        let sum = r.compute_pj + r.onchip_pj + r.dram_pj + r.write_pj + r.switch_pj + r.vector_pj;
        assert!((r.total_pj() - sum).abs() < 1e-9);
        assert!(r.total_pj() > 0.0);
        assert!(r.compute_pj > 0.0);
        assert!(r.switch_pj > 0.0);
    }

    #[test]
    fn bigger_network_costs_more() {
        let (small, arch) = flow_of(&[64, 64]);
        let (large, _) = flow_of(&[128, 256, 128]);
        let m = EnergyModel::default();
        assert!(estimate(&large, &arch, &m).total_pj() > estimate(&small, &arch, &m).total_pj());
    }

    #[test]
    fn memory_arrays_reduce_dram_energy() {
        // Same compute statement with and without memory-mode arrays: the
        // on-chip share grows, DRAM energy falls.
        use cmswitch_arch::ArrayId;
        use cmswitch_metaop::{ComputeStmt, Stmt, SwitchKind};
        let arch = presets::dynaplasia();
        let m = EnergyModel::default();
        let mk = |mem: Vec<ArrayId>| {
            let mut f = Flow::new("e");
            f.push(Stmt::switch(SwitchKind::ToCompute, vec![ArrayId(0)]));
            f.push(Stmt::Compute(ComputeStmt {
                op: "fc".into(),
                compute_arrays: vec![ArrayId(0)],
                mem_in_arrays: mem,
                mem_out_arrays: vec![],
                m: 64,
                k: 64,
                n: 64,
                units: 1,
                in_bytes: 4096,
                out_bytes: 4096,
                weight_static: true,
            }));
            f
        };
        let without = estimate(&mk(vec![]), &arch, &m);
        let with = estimate(
            &mk((1..40).map(ArrayId).collect()),
            &arch,
            &m,
        );
        assert!(with.dram_pj < without.dram_pj);
        assert!(with.total_pj() < without.total_pj());
    }

    #[test]
    fn cmswitch_saves_energy_vs_all_compute_on_bandwidth_bound_work() {
        // The §3.2 energy-efficiency claim, checked end-to-end: compile a
        // bandwidth-hungry model both ways and compare energy.
        use cmswitch_baselines::{Backend, CimMlc, CmSwitch};
        let arch = presets::dynaplasia();
        let cfg = cmswitch_models::transformer::TransformerConfig {
            name: "tiny-opt".into(),
            layers: 2,
            hidden: 512,
            heads: 8,
            ffn_hidden: 2048,
            vocab: 1000,
            gated_ffn: false,
            lm_head: false,
        };
        let g = cmswitch_models::transformer::stack(&cfg, 4, 64).unwrap();
        let ours = CmSwitch::new(arch.clone()).compile(&g).unwrap();
        let mlc = CimMlc::new(arch.clone()).compile(&g).unwrap();
        let m = EnergyModel::default();
        let e_ours = estimate(&ours.flow, &arch, &m).total_pj();
        let e_mlc = estimate(&mlc.flow, &arch, &m).total_pj();
        assert!(
            e_ours <= e_mlc * 1.05,
            "cmswitch {e_ours:.3e} pJ vs mlc {e_mlc:.3e} pJ"
        );
    }
}
