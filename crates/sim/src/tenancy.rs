//! Multi-tenant chip co-scheduling and continuous-decode simulation.
//!
//! One physical dual-mode chip is rarely saturated by a single model:
//! a decode-phase LLM touches a few arrays per step, and the mode
//! switches it requests often leave arrays exactly where the next
//! tenant wants them. This module admits several independently
//! compiled programs onto one [`DualModeArch`] under two policies:
//!
//! * **Time-sliced** ([`TenancyPolicy::TimeSliced`]): every tenant sees
//!   the whole chip; a mode-switch-aware arbiter interleaves their
//!   statement streams, amortizing `CM.switch` requests whose arrays
//!   are already in the target mode and charging *injected* re-switches
//!   to whichever tenant flipped a neighbour's arrays.
//! * **Partitioned** ([`TenancyPolicy::Partitioned`]): each tenant owns
//!   a disjoint contiguous array range. Programs are compiled against
//!   the shrunken sub-chip ([`DualModeArch::partition`]), re-verified
//!   against that smaller capacity, then relocated onto the physical
//!   arrays. The off-chip link and vector function unit remain shared
//!   and are arbitrated like any other resource.
//!
//! Admission runs the static verifier's dependence and capacity lints
//! on every program by default — a co-scheduler that trusts `op_deps`
//! blindly would happily overlap tenants across a dropped edge — and
//! rejections surface as [`TenancyError::Admission`].
//!
//! [`DecodeLoop`] drives the co-scheduler through continuous-batching
//! autoregressive decode: each step grows every tenant's KV cache,
//! inflating its memory-mode footprint, and when a plan no longer fits
//! its partition the loop *re-segments* mid-flight through a
//! [`Session`] sharing the parent's allocation cache and artifact
//! store — warm re-planning is solve-free.

use std::collections::BTreeMap;
use std::fmt;

use cmswitch_arch::{ArchError, ArrayId, ArrayMode, DualModeArch};
use cmswitch_core::verify::{CapacityLint, DependenceLint};
use cmswitch_core::{
    CompileError, CompileRequest, CompiledProgram, DiagnosticEvent, Diagnostics, Session,
    Verifier, VerifyReport,
};
use cmswitch_graph::{Graph, GraphError};
use cmswitch_metaop::{Flow, MemLoc, Stmt, SwitchKind};

use crate::energy::{self, EnergyModel, EnergyReport};
use crate::model;

/// One admitted tenant: a label plus its compiled program.
#[derive(Debug, Clone, Copy)]
pub struct TenantProgram<'a> {
    /// Tenant label, used in reports and diagnostics.
    pub name: &'a str,
    /// The program to co-schedule.
    pub program: &'a CompiledProgram,
}

impl<'a> TenantProgram<'a> {
    /// Pairs a label with a compiled program.
    pub fn new(name: &'a str, program: &'a CompiledProgram) -> Self {
        TenantProgram { name, program }
    }
}

/// How tenants divide the chip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TenancyPolicy {
    /// Every tenant sees the whole chip; the arbiter interleaves them.
    TimeSliced,
    /// Tenant `i` owns a contiguous range of `shares[i]` arrays;
    /// programs must have been compiled against the matching
    /// [`DualModeArch::partition`] sub-chip.
    Partitioned {
        /// Per-tenant array counts, in tenant order.
        shares: Vec<usize>,
    },
}

/// Options for [`ChipScheduler::co_simulate`].
#[derive(Debug, Clone)]
pub struct CoSimOptions {
    /// Chip-division policy.
    pub policy: TenancyPolicy,
    /// Run the dependence and capacity lints on every admitted
    /// program (default `true`). Opting out is for programs already
    /// verified by the caller on the same architecture.
    pub verify_admission: bool,
    /// Energy coefficients for per-tenant attribution.
    pub energy_model: EnergyModel,
}

impl Default for CoSimOptions {
    fn default() -> Self {
        CoSimOptions {
            policy: TenancyPolicy::TimeSliced,
            verify_admission: true,
            energy_model: EnergyModel::default(),
        }
    }
}

/// Co-scheduling failures.
#[derive(Debug)]
pub enum TenancyError {
    /// `co_simulate` was called with an empty tenant slice.
    NoTenants,
    /// A partitioned policy listed a different number of shares than
    /// tenants.
    ShareMismatch {
        /// Tenants submitted.
        tenants: usize,
        /// Shares listed in the policy.
        shares: usize,
    },
    /// The per-tenant shares exceed the physical array count.
    PartitionOverflow {
        /// Sum of requested shares.
        requested: usize,
        /// Arrays physically present.
        available: usize,
    },
    /// A tenant's program failed admission verification.
    Admission {
        /// The rejected tenant.
        tenant: String,
        /// The verifier's findings.
        report: Box<VerifyReport>,
    },
    /// Carving a partition sub-chip failed.
    Arch(ArchError),
    /// A decode tenant's graph builder failed.
    Graph {
        /// The failing tenant.
        tenant: String,
        /// The underlying graph error.
        source: GraphError,
    },
    /// A decode tenant's (re-)compilation failed.
    Compile {
        /// The failing tenant.
        tenant: String,
        /// The underlying compile error.
        source: Box<CompileError>,
    },
}

impl fmt::Display for TenancyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenancyError::NoTenants => write!(f, "no tenants to co-schedule"),
            TenancyError::ShareMismatch { tenants, shares } => write!(
                f,
                "partitioned policy lists {shares} shares for {tenants} tenants"
            ),
            TenancyError::PartitionOverflow {
                requested,
                available,
            } => write!(
                f,
                "partition shares claim {requested} arrays, chip has {available}"
            ),
            TenancyError::Admission { tenant, report } => write!(
                f,
                "tenant {tenant} rejected at admission: {} deny finding(s)",
                report.deny_count()
            ),
            TenancyError::Arch(e) => write!(f, "partitioning failed: {e}"),
            TenancyError::Graph { tenant, source } => {
                write!(f, "tenant {tenant} graph construction failed: {source}")
            }
            TenancyError::Compile { tenant, source } => {
                write!(f, "tenant {tenant} compilation failed: {source}")
            }
        }
    }
}

impl std::error::Error for TenancyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TenancyError::Arch(e) => Some(e),
            TenancyError::Graph { source, .. } => Some(source),
            TenancyError::Compile { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<ArchError> for TenancyError {
    fn from(e: ArchError) -> Self {
        TenancyError::Arch(e)
    }
}

/// How the arbiter's mode-switch handling played out.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SwitchAmortization {
    /// Array-switches the programs requested.
    pub requested: u64,
    /// Array-switches actually driven.
    pub executed: u64,
    /// Requested switches skipped because a neighbour tenant had
    /// already left the arrays in the target mode.
    pub amortized: u64,
    /// Re-switches injected because a neighbour flipped arrays a
    /// tenant still needed.
    pub injected: u64,
    /// Total cycles spent reconfiguring arrays.
    pub switch_cycles: f64,
}

/// One tenant's share of a co-scheduled run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant label.
    pub name: String,
    /// Cycle at which the tenant's last event retired.
    pub finish_cycles: f64,
    /// Cycles the tenant actively held resources (incl. injected
    /// re-switches charged to it).
    pub busy_cycles: f64,
    /// Makespan the same program achieves alone on an idle chip,
    /// under the same arbiter.
    pub solo_cycles: f64,
    /// Energy attributed to this tenant (schedule-invariant).
    pub energy: EnergyReport,
}

/// Result of co-scheduling N tenants on one chip.
#[derive(Debug, Clone, PartialEq)]
pub struct TenancyReport {
    /// Per-tenant outcomes, in submission order.
    pub tenants: Vec<TenantReport>,
    /// Makespan of the co-scheduled run.
    pub total_cycles: f64,
    /// Sum of the tenants' solo makespans — what running them
    /// back-to-back would cost.
    pub serialized_cycles: f64,
    /// Chip-level energy: the component-wise sum of tenant energies.
    pub energy: EnergyReport,
    /// Jain's fairness index over per-tenant slowdowns
    /// (`solo/finish`); `1.0` means every tenant was slowed equally.
    pub fairness: f64,
    /// Mode-switch amortization statistics.
    pub switches: SwitchAmortization,
}

impl TenancyReport {
    /// Chip throughput gain over running the tenants back-to-back.
    pub fn speedup(&self) -> f64 {
        if self.total_cycles > 0.0 {
            self.serialized_cycles / self.total_cycles
        } else {
            1.0
        }
    }
}

// ---------------------------------------------------------------------
// Event extraction
// ---------------------------------------------------------------------

/// One arbitrated unit of work: a statement priced through the shared
/// [`model`] kernel, with the resources it holds while running.
#[derive(Debug, Clone)]
struct Event {
    /// Cycles the event holds its arrays (zero for switches, whose
    /// cost depends on chip state at dispatch).
    cycles: f64,
    /// Arrays touched, each with the mode the event needs.
    arrays: Vec<(ArrayId, ArrayMode)>,
    /// Cycles of shared off-chip-link occupancy.
    bus: f64,
    /// Cycles of shared vector-FU occupancy.
    fu: f64,
    /// Mode-switch request: target kind plus addressed arrays.
    switch: Option<(SwitchKind, Vec<ArrayId>)>,
}

impl Event {
    fn exec(cycles: f64) -> Event {
        Event {
            cycles,
            arrays: Vec::new(),
            bus: 0.0,
            fu: 0.0,
            switch: None,
        }
    }
}

/// Collects `(array, mode)` needs from a segment body.
fn collect_body_arrays(body: &[Stmt], out: &mut BTreeMap<u32, ArrayMode>) {
    for stmt in body {
        match stmt {
            Stmt::Compute(c) => {
                for a in &c.compute_arrays {
                    out.insert(a.0, ArrayMode::Compute);
                }
                for a in c.mem_in_arrays.iter().chain(&c.mem_out_arrays) {
                    out.entry(a.0).or_insert(ArrayMode::Memory);
                }
            }
            Stmt::LoadWeights(w) => {
                for a in &w.arrays {
                    out.insert(a.0, ArrayMode::Compute);
                }
            }
            Stmt::Mem(m) => {
                if let MemLoc::CimArrays(arrays) = &m.loc {
                    for a in arrays {
                        out.entry(a.0).or_insert(ArrayMode::Memory);
                    }
                }
            }
            Stmt::Parallel(inner) => collect_body_arrays(inner, out),
            Stmt::Switch { .. } | Stmt::Vector(_) => {}
        }
    }
}

fn segment_event(body: &[Stmt], arch: &DualModeArch) -> Event {
    let phases = model::segment_phases(body, arch);
    let mut needs = BTreeMap::new();
    collect_body_arrays(body, &mut needs);
    // The off-chip link streams the weight fetches of the load phase
    // plus any loose main-memory traffic in the body.
    let loose_main: f64 = body
        .iter()
        .filter_map(|s| match s {
            Stmt::Mem(m) if matches!(m.loc, MemLoc::Main) => Some(model::mem_duration(m, arch)),
            _ => None,
        })
        .sum();
    let fu: f64 = body
        .iter()
        .filter_map(|s| match s {
            Stmt::Vector(v) => Some(model::vector_duration(v.flops)),
            _ => None,
        })
        .sum();
    Event {
        cycles: phases.total(),
        arrays: needs
            .into_iter()
            .map(|(a, m)| (ArrayId(a), m))
            .collect(),
        bus: phases.load_phase + loose_main,
        fu,
        switch: None,
    }
}

/// Lowers a compiled flow into the arbiter's event stream. Statement
/// order is preserved; every event is priced by the same kernel both
/// simulators use, so a solo tenant costs exactly what the sequential
/// model would charge for the same statements.
fn extract_events(flow: &Flow, arch: &DualModeArch) -> Vec<Event> {
    let mut events = Vec::with_capacity(flow.stmts().len());
    for stmt in flow.stmts() {
        match stmt {
            Stmt::Switch { kind, arrays } => events.push(Event {
                cycles: 0.0,
                arrays: Vec::new(),
                bus: 0.0,
                fu: 0.0,
                switch: Some((*kind, arrays.clone())),
            }),
            Stmt::Mem(m) => {
                let cycles = model::mem_duration(m, arch);
                let mut ev = Event::exec(cycles);
                match &m.loc {
                    MemLoc::Main => ev.bus = cycles,
                    MemLoc::Buffer => {}
                    MemLoc::CimArrays(arrays) => {
                        ev.arrays = arrays.iter().map(|a| (*a, ArrayMode::Memory)).collect();
                    }
                }
                events.push(ev);
            }
            Stmt::LoadWeights(w) => {
                let cycles = model::load_duration(w.arrays.len(), arch);
                let mut ev = Event::exec(cycles);
                ev.arrays = w.arrays.iter().map(|a| (*a, ArrayMode::Compute)).collect();
                ev.bus = cycles;
                events.push(ev);
            }
            Stmt::Vector(v) => {
                let cycles = model::vector_duration(v.flops);
                let mut ev = Event::exec(cycles);
                ev.fu = cycles;
                events.push(ev);
            }
            Stmt::Parallel(body) => events.push(segment_event(body, arch)),
            Stmt::Compute(_) => events.push(segment_event(std::slice::from_ref(stmt), arch)),
        }
    }
    events
}

// ---------------------------------------------------------------------
// The arbiter
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, Default)]
struct TenantOutcome {
    finish: f64,
    busy: f64,
}

/// Greedy deterministic list scheduler over per-tenant event streams.
///
/// Chip state is per-array mode (all arrays start in memory mode, as
/// [`crate::chip::ChipState`] does) plus per-array, bus and FU
/// free-times. Each round dispatches the tenant whose next event can
/// start earliest; ties prefer the event that needs **no** mode flip
/// (the switch-aware part — batching same-mode work before paying a
/// reconfiguration), then the lower tenant index. One event retires
/// per round, so the loop terminates and is bit-deterministic.
fn arbitrate(
    streams: &[Vec<Event>],
    arch: &DualModeArch,
) -> (Vec<TenantOutcome>, f64, SwitchAmortization) {
    let n_arrays = arch.n_arrays();
    let mut modes = vec![ArrayMode::Memory; n_arrays];
    let mut array_free = vec![0.0f64; n_arrays];
    let mut bus_free = 0.0f64;
    let mut fu_free = 0.0f64;
    let mut ready = vec![0.0f64; streams.len()];
    let mut busy = vec![0.0f64; streams.len()];
    let mut idx = vec![0usize; streams.len()];
    let mut stats = SwitchAmortization::default();
    let mut last: Option<usize> = None;

    loop {
        // Pick the dispatchable event with the earliest start. Ties
        // prefer the tenant that ran last (batching one tenant's
        // same-mode run instead of ping-ponging arrays between mode
        // domains), then flip-free events, then the lower index.
        let mut best: Option<(f64, bool, bool, usize)> = None;
        for (t, stream) in streams.iter().enumerate() {
            let Some(ev) = stream.get(idx[t]) else {
                continue;
            };
            let mut start = ready[t];
            let needs_flip;
            if let Some((kind, arrays)) = &ev.switch {
                let mut pending = 0usize;
                for a in arrays {
                    if modes[a.0 as usize] != kind.target_mode() {
                        pending += 1;
                        start = start.max(array_free[a.0 as usize]);
                    }
                }
                needs_flip = pending > 0;
            } else {
                for (a, mode) in &ev.arrays {
                    start = start.max(array_free[a.0 as usize]);
                    if modes[a.0 as usize] != *mode {
                        // An injected re-switch will be needed.
                    }
                }
                if ev.bus > 0.0 {
                    start = start.max(bus_free);
                }
                if ev.fu > 0.0 {
                    start = start.max(fu_free);
                }
                needs_flip = ev
                    .arrays
                    .iter()
                    .any(|(a, mode)| modes[a.0 as usize] != *mode);
            }
            let candidate = (start, last != Some(t), needs_flip, t);
            let better = match &best {
                None => true,
                Some((bs, bl, bf, bt)) => {
                    (candidate.0, candidate.1 as u8, candidate.2 as u8, candidate.3)
                        < (*bs, *bl as u8, *bf as u8, *bt)
                }
            };
            if better {
                best = Some(candidate);
            }
        }
        let Some((start, _, _, t)) = best else {
            break;
        };
        last = Some(t);

        let ev = &streams[t][idx[t]];
        idx[t] += 1;
        if let Some((kind, arrays)) = &ev.switch {
            let pending: Vec<ArrayId> = arrays
                .iter()
                .copied()
                .filter(|a| modes[a.0 as usize] != kind.target_mode())
                .collect();
            stats.requested += arrays.len() as u64;
            stats.amortized += (arrays.len() - pending.len()) as u64;
            stats.executed += pending.len() as u64;
            let dur = model::switch_duration(*kind, pending.len(), arch);
            let end = start + dur;
            for a in &pending {
                modes[a.0 as usize] = kind.target_mode();
                array_free[a.0 as usize] = end;
            }
            stats.switch_cycles += dur;
            busy[t] += dur;
            ready[t] = end;
        } else {
            // Re-align arrays a neighbour left in the wrong mode; the
            // cost is charged to *this* tenant, which is what makes
            // fairness numbers honest under time-slicing.
            let mut to_compute = 0usize;
            let mut to_memory = 0usize;
            for (a, mode) in &ev.arrays {
                if modes[a.0 as usize] != *mode {
                    match mode {
                        ArrayMode::Compute => to_compute += 1,
                        ArrayMode::Memory => to_memory += 1,
                    }
                }
            }
            let flip = model::switch_duration(SwitchKind::ToCompute, to_compute, arch)
                + model::switch_duration(SwitchKind::ToMemory, to_memory, arch);
            stats.injected += (to_compute + to_memory) as u64;
            stats.switch_cycles += flip;
            let exec_start = start + flip;
            let end = exec_start + ev.cycles;
            for (a, mode) in &ev.arrays {
                modes[a.0 as usize] = *mode;
                array_free[a.0 as usize] = end;
            }
            if ev.bus > 0.0 {
                bus_free = exec_start + ev.bus;
            }
            if ev.fu > 0.0 {
                fu_free = exec_start + ev.fu;
            }
            busy[t] += flip + ev.cycles;
            ready[t] = end;
        }
    }

    let outcomes: Vec<TenantOutcome> = streams
        .iter()
        .enumerate()
        .map(|(t, _)| TenantOutcome {
            finish: ready[t],
            busy: busy[t],
        })
        .collect();
    let total = outcomes.iter().map(|o| o.finish).fold(0.0, f64::max);
    (outcomes, total, stats)
}

/// Jain's fairness index over per-tenant progress shares.
fn jain_fairness(shares: &[f64]) -> f64 {
    let n = shares.len() as f64;
    let sum: f64 = shares.iter().sum();
    let sq: f64 = shares.iter().map(|x| x * x).sum();
    if sq > 0.0 {
        (sum * sum) / (n * sq)
    } else {
        1.0
    }
}

/// Relocates a partition-relative flow onto the physical chip by
/// offsetting every array reference by the partition base.
fn offset_flow(flow: &Flow, base: u32) -> Flow {
    fn offset_stmt(stmt: &mut Stmt, base: u32) {
        match stmt {
            Stmt::Switch { arrays, .. } => {
                for a in arrays {
                    a.0 += base;
                }
            }
            Stmt::Compute(c) => {
                for a in c
                    .compute_arrays
                    .iter_mut()
                    .chain(&mut c.mem_in_arrays)
                    .chain(&mut c.mem_out_arrays)
                {
                    a.0 += base;
                }
            }
            Stmt::LoadWeights(w) => {
                for a in &mut w.arrays {
                    a.0 += base;
                }
            }
            Stmt::Mem(m) => {
                if let MemLoc::CimArrays(arrays) = &mut m.loc {
                    for a in arrays {
                        a.0 += base;
                    }
                }
            }
            Stmt::Parallel(body) => {
                for s in body {
                    offset_stmt(s, base);
                }
            }
            Stmt::Vector(_) => {}
        }
    }
    let mut out = Flow::new(flow.name());
    for stmt in flow.stmts() {
        let mut s = stmt.clone();
        offset_stmt(&mut s, base);
        out.push(s);
    }
    out
}

// ---------------------------------------------------------------------
// ChipScheduler
// ---------------------------------------------------------------------

/// Admits N compiled programs onto one chip and co-schedules them.
#[derive(Debug, Clone)]
pub struct ChipScheduler {
    arch: DualModeArch,
    options: CoSimOptions,
}

impl ChipScheduler {
    /// A scheduler for `arch` with default (time-sliced, verified)
    /// options.
    pub fn new(arch: DualModeArch) -> Self {
        ChipScheduler {
            arch,
            options: CoSimOptions::default(),
        }
    }

    /// Replaces the co-simulation options.
    pub fn with_options(mut self, options: CoSimOptions) -> Self {
        self.options = options;
        self
    }

    /// The chip being scheduled.
    pub fn arch(&self) -> &DualModeArch {
        &self.arch
    }

    fn admit(
        &self,
        name: &str,
        program: &CompiledProgram,
        arch: &DualModeArch,
    ) -> Result<(), TenancyError> {
        if !self.options.verify_admission {
            return Ok(());
        }
        let verifier = Verifier::empty()
            .with_lint(Box::new(DependenceLint))
            .with_lint(Box::new(CapacityLint));
        let report = verifier.run(program, arch);
        if report.deny_count() > 0 {
            return Err(TenancyError::Admission {
                tenant: name.to_string(),
                report: Box::new(report),
            });
        }
        Ok(())
    }

    /// Co-schedules the tenants and reports per-tenant and chip-level
    /// results.
    ///
    /// # Errors
    ///
    /// [`TenancyError::NoTenants`] on an empty slice;
    /// [`TenancyError::Admission`] when a program fails the
    /// dependence/capacity lints; share-shape errors under the
    /// partitioned policy.
    pub fn co_simulate(&self, tenants: &[TenantProgram]) -> Result<TenancyReport, TenancyError> {
        if tenants.is_empty() {
            return Err(TenancyError::NoTenants);
        }

        // Admission + event extraction, policy-dependent.
        let mut streams = Vec::with_capacity(tenants.len());
        let mut energies = Vec::with_capacity(tenants.len());
        match &self.options.policy {
            TenancyPolicy::TimeSliced => {
                for t in tenants {
                    self.admit(t.name, t.program, &self.arch)?;
                    streams.push(extract_events(&t.program.flow, &self.arch));
                    energies.push(energy::estimate(
                        &t.program.flow,
                        &self.arch,
                        &self.options.energy_model,
                    ));
                }
            }
            TenancyPolicy::Partitioned { shares } => {
                if shares.len() != tenants.len() {
                    return Err(TenancyError::ShareMismatch {
                        tenants: tenants.len(),
                        shares: shares.len(),
                    });
                }
                let requested: usize = shares.iter().sum();
                if requested > self.arch.n_arrays() {
                    return Err(TenancyError::PartitionOverflow {
                        requested,
                        available: self.arch.n_arrays(),
                    });
                }
                let mut base = 0u32;
                for (t, &share) in tenants.iter().zip(shares) {
                    let sub = self.arch.partition(share)?;
                    // Verify against the *shrunken* capacity: a plan
                    // that fit the whole chip may not fit its slice.
                    self.admit(t.name, t.program, &sub)?;
                    let relocated = offset_flow(&t.program.flow, base);
                    streams.push(extract_events(&relocated, &self.arch));
                    // Energy is schedule- and placement-invariant;
                    // price the flow against the sub-chip it was
                    // compiled for.
                    energies.push(energy::estimate(
                        &t.program.flow,
                        &sub,
                        &self.options.energy_model,
                    ));
                    base += share as u32;
                }
            }
        }

        // Solo baselines: the same stream alone on an idle chip.
        let mut solos = Vec::with_capacity(streams.len());
        for stream in &streams {
            let (outcome, _, _) = arbitrate(std::slice::from_ref(stream), &self.arch);
            solos.push(outcome[0].finish);
        }
        let serialized_cycles: f64 = solos.iter().sum();

        let (outcomes, total_cycles, switches) = arbitrate(&streams, &self.arch);

        let mut chip_energy = EnergyReport::default();
        for e in &energies {
            chip_energy.absorb(e);
        }
        let progress: Vec<f64> = outcomes
            .iter()
            .zip(&solos)
            .map(|(o, solo)| {
                if o.finish > 0.0 {
                    solo / o.finish
                } else {
                    1.0
                }
            })
            .collect();

        Ok(TenancyReport {
            tenants: tenants
                .iter()
                .zip(&outcomes)
                .zip(&solos)
                .zip(&energies)
                .map(|(((t, o), solo), e)| TenantReport {
                    name: t.name.to_string(),
                    finish_cycles: o.finish,
                    busy_cycles: o.busy,
                    solo_cycles: *solo,
                    energy: *e,
                })
                .collect(),
            total_cycles,
            serialized_cycles,
            energy: chip_energy,
            fairness: jain_fairness(&progress),
            switches,
        })
    }
}

// ---------------------------------------------------------------------
// DecodeLoop
// ---------------------------------------------------------------------

/// One autoregressive tenant of a [`DecodeLoop`].
pub struct DecodeTenant {
    name: String,
    batch: usize,
    kv_start: usize,
    kv_bytes_per_token: u64,
    build: Box<dyn Fn(usize) -> Result<Graph, GraphError> + Send + Sync>,
}

impl fmt::Debug for DecodeTenant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DecodeTenant")
            .field("name", &self.name)
            .field("batch", &self.batch)
            .field("kv_start", &self.kv_start)
            .field("kv_bytes_per_token", &self.kv_bytes_per_token)
            .finish_non_exhaustive()
    }
}

impl DecodeTenant {
    /// A decode tenant: `build(kv_len)` constructs the step graph at a
    /// KV-cache length; `kv_bytes_per_token` is the per-step growth of
    /// the tenant's memory-mode footprint (per batch element).
    pub fn new(
        name: impl Into<String>,
        batch: usize,
        kv_start: usize,
        kv_bytes_per_token: u64,
        build: impl Fn(usize) -> Result<Graph, GraphError> + Send + Sync + 'static,
    ) -> Self {
        DecodeTenant {
            name: name.into(),
            batch: batch.max(1),
            kv_start,
            kv_bytes_per_token,
            build: Box::new(build),
        }
    }

    /// Tenant label.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Options for [`DecodeLoop::run`].
#[derive(Debug, Clone)]
pub struct DecodeOptions {
    /// Decode steps to simulate.
    pub steps: usize,
    /// Clock frequency used only to convert cycles into tokens/sec.
    pub clock_ghz: f64,
    /// Re-segment once a tenant's KV cache has grown by this many
    /// bytes since its last compile, even if the plan still fits the
    /// partition. `u64::MAX` (the default) leaves re-segmentation
    /// purely footprint-driven.
    pub kv_headroom_bytes: u64,
    /// Run admission lints in the co-scheduler (default `true`).
    pub verify_admission: bool,
    /// Energy coefficients.
    pub energy_model: EnergyModel,
}

impl Default for DecodeOptions {
    fn default() -> Self {
        DecodeOptions {
            steps: 8,
            clock_ghz: 1.0,
            kv_headroom_bytes: u64::MAX,
            verify_admission: true,
            energy_model: EnergyModel::default(),
        }
    }
}

/// One tenant's decode-loop outcome.
#[derive(Debug, Clone)]
pub struct DecodeTenantReport {
    /// Tenant label.
    pub name: String,
    /// KV-cache length after the last step.
    pub final_kv: usize,
    /// Mid-flight re-segmentations performed.
    pub resegmentations: u64,
    /// Allocator solves this tenant's compiles cost (initial + all
    /// re-segmentations). Zero on a warm cache.
    pub solves: u64,
    /// The plan the tenant ended on — bit-identical to a cold compile
    /// of the same graph at `final_kv` against the same partition.
    pub final_program: CompiledProgram,
}

/// Result of a continuous-decode co-simulation.
#[derive(Debug, Clone)]
pub struct DecodeReport {
    /// Steps simulated.
    pub steps: usize,
    /// Tokens produced across all tenants.
    pub tokens: u64,
    /// Total chip cycles across all steps.
    pub total_cycles: f64,
    /// Chip-level decode throughput at [`DecodeOptions::clock_ghz`].
    pub tokens_per_sec: f64,
    /// Mid-flight re-segmentations across all tenants.
    pub resegmentations: u64,
    /// Allocator solves across all compiles (zero on a warm cache).
    pub solves: u64,
    /// Typed events, including one [`DiagnosticEvent::Resegmented`]
    /// per re-segmentation.
    pub diagnostics: Diagnostics,
    /// Per-tenant outcomes.
    pub tenants: Vec<DecodeTenantReport>,
    /// The co-scheduling report of the final program set.
    pub tenancy: TenancyReport,
}

/// Drives continuous-batching autoregressive decode over a
/// [`ChipScheduler`] with per-tenant static partitions.
///
/// Each step grows every tenant's KV cache by one token. A tenant's
/// program is re-segmented mid-flight — recompiled through a
/// [`Session::partitioned`] sub-session sharing the parent's
/// allocation cache and artifact store — when the grown memory-mode
/// footprint no longer fits beside the plan's widest segment, or when
/// the growth exceeds [`DecodeOptions::kv_headroom_bytes`].
pub struct DecodeLoop<'a> {
    session: &'a Session,
    tenants: Vec<DecodeTenant>,
    options: DecodeOptions,
}

impl<'a> DecodeLoop<'a> {
    /// A decode loop compiling through `session` (and re-segmenting
    /// through its partition sub-sessions).
    pub fn new(session: &'a Session) -> Self {
        DecodeLoop {
            session,
            tenants: Vec::new(),
            options: DecodeOptions::default(),
        }
    }

    /// Adds a tenant.
    pub fn tenant(mut self, tenant: DecodeTenant) -> Self {
        self.tenants.push(tenant);
        self
    }

    /// Replaces the options.
    pub fn with_options(mut self, options: DecodeOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs the decode loop.
    ///
    /// # Errors
    ///
    /// Graph construction, compilation, partitioning and admission
    /// failures, each tagged with the offending tenant.
    pub fn run(&self) -> Result<DecodeReport, TenancyError> {
        if self.tenants.is_empty() {
            return Err(TenancyError::NoTenants);
        }
        let arch = self.session.arch();
        let n = self.tenants.len();
        let share = arch.n_arrays() / n;
        if share == 0 {
            return Err(TenancyError::PartitionOverflow {
                requested: n,
                available: arch.n_arrays(),
            });
        }

        struct TenantState {
            session: Session,
            program: CompiledProgram,
            kv_compiled: usize,
            kv: usize,
            resegmentations: u64,
            solves: u64,
        }

        let mut diagnostics = Diagnostics::new();
        let mut states = Vec::with_capacity(n);
        for t in &self.tenants {
            let psession = self.session.partitioned(share)?;
            let graph = (t.build)(t.kv_start).map_err(|source| TenancyError::Graph {
                tenant: t.name.clone(),
                source,
            })?;
            let outcome = psession
                .compile(CompileRequest::new(graph).with_label(&t.name))
                .map_err(|source| TenancyError::Compile {
                    tenant: t.name.clone(),
                    source: Box::new(source),
                })?;
            let solves = outcome.stats().mip_solves + outcome.stats().fast_solves;
            states.push(TenantState {
                session: psession,
                program: outcome.program,
                kv_compiled: t.kv_start,
                kv: t.kv_start,
                resegmentations: 0,
                solves,
            });
        }

        let scheduler = ChipScheduler::new(arch.clone()).with_options(CoSimOptions {
            policy: TenancyPolicy::Partitioned {
                shares: vec![share; n],
            },
            verify_admission: self.options.verify_admission,
            energy_model: self.options.energy_model.clone(),
        });

        let co_sim = |states: &[TenantState]| -> Result<TenancyReport, TenancyError> {
            let tenants: Vec<TenantProgram> = self
                .tenants
                .iter()
                .zip(states)
                .map(|(t, s)| TenantProgram::new(&t.name, &s.program))
                .collect();
            scheduler.co_simulate(&tenants)
        };

        let mut step_report = co_sim(&states)?;
        let mut total_cycles = 0.0f64;
        let mut tokens = 0u64;
        for _step in 1..=self.options.steps {
            let mut dirty = false;
            for (t, state) in self.tenants.iter().zip(&mut states) {
                state.kv += 1;
                let grown_bytes = (state.kv - state.kv_compiled) as u64
                    * t.kv_bytes_per_token
                    * t.batch as u64;
                let extra_arrays = grown_bytes.div_ceil(arch.array_bytes().max(1)) as usize;
                let widest = state
                    .program
                    .segments
                    .iter()
                    .map(|s| s.alloc.arrays_used())
                    .max()
                    .unwrap_or(0);
                if widest + extra_arrays > share || grown_bytes > self.options.kv_headroom_bytes {
                    let graph = (t.build)(state.kv).map_err(|source| TenancyError::Graph {
                        tenant: t.name.clone(),
                        source,
                    })?;
                    let outcome = state
                        .session
                        .compile(CompileRequest::new(graph).with_label(&t.name))
                        .map_err(|source| TenancyError::Compile {
                            tenant: t.name.clone(),
                            source: Box::new(source),
                        })?;
                    let solves = outcome.stats().mip_solves + outcome.stats().fast_solves;
                    diagnostics.push(DiagnosticEvent::Resegmented {
                        tenant: t.name.clone(),
                        kv_len: state.kv,
                        solves,
                    });
                    state.program = outcome.program;
                    state.kv_compiled = state.kv;
                    state.resegmentations += 1;
                    state.solves += solves;
                    dirty = true;
                }
            }
            if dirty {
                step_report = co_sim(&states)?;
            }
            total_cycles += step_report.total_cycles;
            tokens += self.tenants.iter().map(|t| t.batch as u64).sum::<u64>();
        }

        let seconds = total_cycles / (self.options.clock_ghz * 1e9);
        Ok(DecodeReport {
            steps: self.options.steps,
            tokens,
            tokens_per_sec: if seconds > 0.0 {
                tokens as f64 / seconds
            } else {
                0.0
            },
            total_cycles,
            resegmentations: states.iter().map(|s| s.resegmentations).sum(),
            solves: states.iter().map(|s| s.solves).sum(),
            diagnostics,
            tenants: self
                .tenants
                .iter()
                .zip(&states)
                .map(|(t, s)| DecodeTenantReport {
                    name: t.name.clone(),
                    final_kv: s.kv,
                    resegmentations: s.resegmentations,
                    solves: s.solves,
                    final_program: s.program.clone(),
                })
                .collect(),
            tenancy: step_report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmswitch_arch::presets;

    fn compiled(graph: Graph, arch: &DualModeArch) -> CompiledProgram {
        Session::builder(arch.clone())
            .build()
            .compile(CompileRequest::new(graph))
            .unwrap()
            .program
    }

    #[test]
    fn empty_tenancy_is_rejected() {
        let scheduler = ChipScheduler::new(presets::tiny());
        assert!(matches!(
            scheduler.co_simulate(&[]),
            Err(TenancyError::NoTenants)
        ));
    }

    #[test]
    fn solo_tenant_matches_its_serialized_baseline() {
        let arch = presets::tiny();
        let p = compiled(cmswitch_models::mlp::mlp(2, &[96, 128, 64]).unwrap(), &arch);
        let report = ChipScheduler::new(arch)
            .co_simulate(&[TenantProgram::new("solo", &p)])
            .unwrap();
        assert_eq!(report.total_cycles, report.serialized_cycles);
        assert_eq!(report.speedup(), 1.0);
        assert_eq!(report.fairness, 1.0);
        assert_eq!(report.switches.injected, 0);
        assert_eq!(report.tenants[0].solo_cycles, report.total_cycles);
    }

    #[test]
    fn two_tenants_amortize_switches_and_beat_serialization() {
        let arch = presets::tiny();
        let a = compiled(cmswitch_models::mlp::mlp(2, &[96, 128, 64]).unwrap(), &arch);
        let b = compiled(cmswitch_models::mlp::mlp(2, &[64, 96, 32]).unwrap(), &arch);
        let report = ChipScheduler::new(arch)
            .co_simulate(&[TenantProgram::new("a", &a), TenantProgram::new("b", &b)])
            .unwrap();
        assert!(
            report.total_cycles < report.serialized_cycles,
            "co-scheduling {} must beat back-to-back {}",
            report.total_cycles,
            report.serialized_cycles
        );
        assert!(report.speedup() > 1.0);
        assert!(report.fairness > 0.0 && report.fairness <= 1.0);
        assert_eq!(
            report.switches.requested,
            report.switches.executed + report.switches.amortized
        );
    }

    #[test]
    fn partitioned_tenants_never_inject_cross_switches() {
        let arch = presets::tiny();
        let n = arch.n_arrays() / 2;
        let sub = arch.partition(n).unwrap();
        let a = compiled(cmswitch_models::mlp::mlp(2, &[96, 128, 64]).unwrap(), &sub);
        let b = compiled(cmswitch_models::mlp::mlp(2, &[64, 96, 32]).unwrap(), &sub);
        let report = ChipScheduler::new(arch)
            .with_options(CoSimOptions {
                policy: TenancyPolicy::Partitioned { shares: vec![n, n] },
                ..CoSimOptions::default()
            })
            .co_simulate(&[TenantProgram::new("a", &a), TenantProgram::new("b", &b)])
            .unwrap();
        // Disjoint arrays: no tenant can flip a neighbour's arrays.
        assert_eq!(report.switches.injected, 0);
        assert!(report.total_cycles < report.serialized_cycles);
    }

    #[test]
    fn partition_share_shape_errors_are_typed() {
        let arch = presets::tiny();
        let p = compiled(cmswitch_models::mlp::mlp(2, &[96, 128, 64]).unwrap(), &arch);
        let tenants = [TenantProgram::new("a", &p)];
        let mismatch = ChipScheduler::new(arch.clone())
            .with_options(CoSimOptions {
                policy: TenancyPolicy::Partitioned {
                    shares: vec![1, 2],
                },
                ..CoSimOptions::default()
            })
            .co_simulate(&tenants);
        assert!(matches!(mismatch, Err(TenancyError::ShareMismatch { .. })));
        let overflow = ChipScheduler::new(arch.clone())
            .with_options(CoSimOptions {
                policy: TenancyPolicy::Partitioned {
                    shares: vec![arch.n_arrays() + 1],
                },
                ..CoSimOptions::default()
            })
            .co_simulate(&tenants);
        assert!(matches!(
            overflow,
            Err(TenancyError::PartitionOverflow { .. })
        ));
    }

    #[test]
    fn admission_rejects_a_program_with_a_dropped_dependence_edge() {
        use cmswitch_core::verify::mutate::Mutation;
        let arch = presets::dynaplasia();
        // Reuse edges only appear when the allocator plans buffer
        // reuse; probe a few shapes until the mutation applies.
        let (good, bad) = [
            cmswitch_models::mlp::mlp(2, &[256, 256, 256, 64]).unwrap(),
            cmswitch_models::registry::build("resnet18", 1, 16).unwrap(),
            cmswitch_models::registry::build("bert-base", 1, 16).unwrap(),
        ]
        .into_iter()
        .find_map(|graph| {
            let p = compiled(graph, &arch);
            Mutation::DropReuseDepEdge.apply(&p).map(|bad| (p, bad))
        })
        .expect("some probe plan has a reuse edge to drop");
        let scheduler = ChipScheduler::new(arch);
        let err = scheduler
            .co_simulate(&[
                TenantProgram::new("good", &good),
                TenantProgram::new("bad", &bad),
            ])
            .unwrap_err();
        match err {
            TenancyError::Admission { tenant, report } => {
                assert_eq!(tenant, "bad");
                assert!(report.deny_count() > 0);
            }
            other => panic!("expected admission rejection, got {other}"),
        }
        // Opting out admits the mutant — the flag exists for programs
        // the caller already verified, and this proves it is the lint
        // doing the rejecting.
        let lax = ChipScheduler::new(presets::dynaplasia()).with_options(CoSimOptions {
            verify_admission: false,
            ..CoSimOptions::default()
        });
        assert!(lax
            .co_simulate(&[TenantProgram::new("bad", &bad)])
            .is_ok());
    }

    #[test]
    fn offset_flow_relocates_every_array_reference() {
        let arch = presets::tiny();
        let sub = arch.partition(2).unwrap();
        let p = compiled(cmswitch_models::mlp::mlp(1, &[64, 32]).unwrap(), &sub);
        let shifted = offset_flow(&p.flow, 7);
        let mut min_before = u32::MAX;
        min_array(p.flow.stmts(), &mut min_before);
        fn min_array(stmts: &[Stmt], min: &mut u32) {
            for s in stmts {
                match s {
                    Stmt::Switch { arrays, .. } => {
                        for a in arrays {
                            *min = (*min).min(a.0);
                        }
                    }
                    Stmt::LoadWeights(w) => {
                        for a in &w.arrays {
                            *min = (*min).min(a.0);
                        }
                    }
                    Stmt::Compute(c) => {
                        for a in c
                            .compute_arrays
                            .iter()
                            .chain(&c.mem_in_arrays)
                            .chain(&c.mem_out_arrays)
                        {
                            *min = (*min).min(a.0);
                        }
                    }
                    Stmt::Mem(m) => {
                        if let MemLoc::CimArrays(arrays) = &m.loc {
                            for a in arrays {
                                *min = (*min).min(a.0);
                            }
                        }
                    }
                    Stmt::Parallel(body) => min_array(body, min),
                    Stmt::Vector(_) => {}
                }
            }
        }
        let mut min = u32::MAX;
        min_array(shifted.stmts(), &mut min);
        assert_eq!(
            min,
            min_before + 7,
            "every reference moved up by the partition base"
        );
    }
}
