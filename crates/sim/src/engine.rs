//! The event-driven, cycle-level dual-mode simulator.
//!
//! [`crate::timing::simulate`] replays a flow strictly in statement
//! order, which cannot show how CIM-mode compute, memory-mode
//! buffering and mode-switch overheads *overlap and contend* on a real
//! chip — the effect the paper's end-to-end evaluation rests on. This
//! module grows the simulator into that role: statements become events
//! on per-array timelines, a binary-heap completion queue drives the
//! schedule, and an event starts as soon as — but no sooner than — its
//! data and resources allow.
//!
//! # Event model
//!
//! Every statement of the flow becomes one event (segments become a
//! weight-load event per operator plus one pipelined execution event).
//! An event waits for:
//!
//! * **arrays** — an array serves one event at a time, so consecutive
//!   touches of the same array serialize (per-array timelines record
//!   the busy windows; `CM.switch` events are explicit occupants costed
//!   from the [`DualModeArch`] switch latencies and the
//!   [`EnergyModel`] switch energy);
//! * **data** — a segment's execution waits for the segments it
//!   actually consumes (taken from [`CompiledProgram::op_deps`] when
//!   simulating a compiled program; a plain flow conservatively chains
//!   segments) and for any write-back statement emitted ahead of it;
//! * **shared resources** — bulk memory statements contend for the one
//!   off-chip/buffer port (they serialize among themselves on a bus
//!   timeline), and top-level vector statements serialize on the single
//!   vector function unit.
//!
//! Everything else overlaps: the next segment's mode switches and
//! weight loads start while the previous segment still executes on
//! *other* arrays, write-backs stream out while unrelated arrays
//! reconfigure, and truly independent segments pipeline.
//!
//! Both simulators price statements through the shared [`crate::model`]
//! kernel, so the event engine can never be slower than the sequential
//! replay — on a fully serial flow the two agree bit-for-bit, and every
//! admitted overlap only moves events earlier. `tests/sim_differential.rs`
//! checks exactly that across the full model registry.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cmswitch_arch::{ArrayId, DualModeArch};
use cmswitch_core::{CompileOutcome, CompiledProgram, DiagnosticEvent, Diagnostics, Session};
use cmswitch_metaop::{Flow, MemLoc, MetaOpError, Stmt, SwitchKind};

use crate::chip::ChipState;
use crate::energy::{self, EnergyModel, EnergyReport};
use crate::model;
use crate::tenancy::{ChipScheduler, CoSimOptions, TenancyError, TenancyReport, TenantProgram};

use crate::stats::{
    ArrayTimeline, BusyBreakdown, BusyInterval, BusyKind, CriticalStep, EngineReport,
    SegmentWindow, SimReport,
};
use crate::timing;

/// The sequential reference model: the event engine must never report a
/// longer makespan than this replay, and on single-segment flows the
/// two match bit-exactly (see `tests/sim_invariants.rs`).
///
/// A thin, named wrapper over [`crate::timing::simulate`] so harnesses
/// can hold "a simulator" without committing to one implementation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialModel;

impl SequentialModel {
    /// Replays `flow` strictly in statement order.
    ///
    /// # Errors
    ///
    /// Returns [`MetaOpError`] if the flow violates mode discipline.
    pub fn simulate(&self, flow: &Flow, arch: &DualModeArch) -> Result<SimReport, MetaOpError> {
        timing::simulate(flow, arch)
    }
}

/// Analytic lower bound on any schedule of `flow` on `arch`: the
/// slowest compute statement priced by the Eq. 9/10 relaxation with the
/// *whole chip* granted to it (the same solver hook the segmentation
/// DP's pruning bound uses). No event schedule can beat it, because
/// every compute event's own duration already exceeds its bound.
pub fn latency_lower_bound(flow: &Flow, arch: &DualModeArch) -> f64 {
    let chip = cmswitch_solver::alloc::AllocChip {
        op_cim: arch.op_cim(),
        d_cim: arch.d_cim(),
        n_arrays: arch.n_arrays(),
    };
    fn visit(stmts: &[Stmt], arch: &DualModeArch, chip: &cmswitch_solver::alloc::AllocChip) -> f64 {
        let mut lb = 0.0f64;
        for stmt in stmts {
            match stmt {
                Stmt::Parallel(body) => lb = lb.max(visit(body, arch, chip)),
                Stmt::Compute(c) => {
                    let work = (c.units * c.m * c.k * c.n) as f64;
                    let ai = if c.in_bytes == 0 {
                        1e12
                    } else {
                        work / c.in_bytes as f64
                    };
                    let op = cmswitch_solver::alloc::AllocOp {
                        work,
                        min_compute: 1,
                        ai,
                        d_main: arch.d_main(),
                    };
                    lb = lb.max(cmswitch_solver::alloc::latency_lower_bound(
                        std::slice::from_ref(&op),
                        chip,
                    ));
                }
                _ => {}
            }
        }
        lb
    }
    visit(flow.stmts(), arch, &chip)
}

/// What an event waits for from one predecessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DepOn {
    /// The predecessor's completion.
    Finish,
    /// The predecessor releasing one specific array (a segment releases
    /// each lane's arrays as the lane drains, before the whole segment
    /// completes).
    Array(ArrayId),
}

/// Payload of one event node.
enum Payload {
    Switch {
        kind: SwitchKind,
        arrays: Vec<ArrayId>,
    },
    Load {
        arrays: Vec<ArrayId>,
    },
    Seg {
        index: usize,
        phases: model::SegmentPhases,
        /// `(lane cycles, compute arrays)` per operator.
        lanes: Vec<(f64, Vec<ArrayId>)>,
        /// Memory-mode arrays and how long the segment keeps each busy.
        mem_busy: Vec<(ArrayId, f64)>,
        /// Weight-load events forming this segment's barrier.
        load_nodes: Vec<usize>,
        energy_pj: f64,
    },
    Mem {
        arrays: Vec<ArrayId>,
    },
    Vector,
}

struct Node {
    label: String,
    duration: f64,
    payload: Payload,
    deps: Vec<(usize, DepOn)>,
}

/// The event-driven simulator. Construct once (optionally with a custom
/// [`EnergyModel`]) and reuse across flows.
#[derive(Debug, Clone, Default)]
pub struct EventEngine {
    energy: EnergyModel,
}

impl EventEngine {
    /// An engine with the default energy model.
    pub fn new() -> Self {
        EventEngine::default()
    }

    /// An engine charging energy through `model`.
    pub fn with_energy_model(model: EnergyModel) -> Self {
        EventEngine { energy: model }
    }

    /// The energy model in use.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Simulates a bare flow. Without operator dependency information,
    /// segments are conservatively chained (each waits for the previous
    /// one's data); switches, weight loads and write-backs still overlap
    /// wherever arrays and the bus allow.
    ///
    /// # Errors
    ///
    /// Returns [`MetaOpError`] if the flow violates mode discipline at
    /// runtime.
    pub fn simulate(&self, flow: &Flow, arch: &DualModeArch) -> Result<EngineReport, MetaOpError> {
        self.run(flow, arch, None)
    }

    /// Simulates a compiled program: segment-level data dependencies are
    /// derived from [`CompiledProgram::op_deps`], so segments with no
    /// producer-consumer relation may overlap ("inter-segment
    /// pipelining"). Falls back to the conservative chain of
    /// [`EventEngine::simulate`] if the flow's segment count does not
    /// match the plan.
    ///
    /// The engine *trusts* `op_deps`: a missing edge silently legalizes
    /// an overlap that reads data before it exists. The `dep-missing`
    /// lint of `cmswitch-core`'s `verify` module statically checks that
    /// every shared-buffer and planned-reuse dependence has its edge.
    ///
    /// # Errors
    ///
    /// Returns [`MetaOpError`] if the emitted flow violates mode
    /// discipline (a compiler bug this simulator exists to catch).
    pub fn simulate_program(
        &self,
        program: &CompiledProgram,
        arch: &DualModeArch,
    ) -> Result<EngineReport, MetaOpError> {
        // Count what `push_segment` counts — `parallel` blocks AND bare
        // top-level compute statements — so segment indices cannot
        // silently misalign with the plan's dependency table.
        let n_flow_segments = program
            .flow
            .stmts()
            .iter()
            .filter(|s| matches!(s, Stmt::Parallel(_) | Stmt::Compute(_)))
            .count();
        let seg_deps = (n_flow_segments == program.segments.len()).then(|| {
            // Map each op to its segment, then project op deps onto
            // segment indices.
            let mut op_seg = vec![usize::MAX; program.ops.len()];
            for (si, seg) in program.segments.iter().enumerate() {
                for slot in op_seg
                    .iter_mut()
                    .take(seg.range.1 + 1)
                    .skip(seg.range.0)
                {
                    *slot = si;
                }
            }
            let mut deps: Vec<Vec<usize>> = vec![Vec::new(); program.segments.len()];
            for &(p, c) in &program.op_deps {
                let (sp, sc) = (op_seg.get(p), op_seg.get(c));
                if let (Some(&sp), Some(&sc)) = (sp, sc) {
                    if sp != usize::MAX && sc != usize::MAX && sp != sc {
                        let (from, to) = if sp < sc { (sp, sc) } else { (sc, sp) };
                        if !deps[to].contains(&from) {
                            deps[to].push(from);
                        }
                    }
                }
            }
            deps
        });
        self.run(&program.flow, arch, seg_deps)
    }

    fn run(
        &self,
        flow: &Flow,
        arch: &DualModeArch,
        seg_deps: Option<Vec<Vec<usize>>>,
    ) -> Result<EngineReport, MetaOpError> {
        // ---- Mode-discipline prepass (same order the sequential model
        // applies statements in, so violations surface identically). ----
        let mut chip = ChipState::new(arch);
        for (idx, stmt) in flow.stmts().iter().enumerate() {
            match stmt {
                Stmt::Parallel(body) => {
                    for s in body {
                        chip.apply(s, idx)?;
                    }
                }
                other => chip.apply(other, idx)?,
            }
        }

        // ---- Build the event graph. ----
        let mut b = Builder::new(arch, &self.energy, seg_deps);
        for (idx, stmt) in flow.stmts().iter().enumerate() {
            b.push_stmt(stmt, idx);
        }
        let Builder {
            nodes,
            seg_nodes,
            serialized,
            switch_process,
            switches_to_compute,
            switches_to_memory,
            energy: total_energy,
            ..
        } = b;

        // ---- Event-driven run: completion events through a binary
        // heap, dependents fire as their last dependency resolves. ----
        let timelines = (0..arch.n_arrays())
            .map(|i| ArrayTimeline {
                array: ArrayId(i as u32),
                final_mode: chip.mode(ArrayId(i as u32)),
                intervals: Vec::new(),
            })
            .collect();
        let mut sched = Scheduler::new(&nodes, timelines);
        sched.run(&nodes, arch);
        let Scheduler {
            starts,
            finishes,
            critical,
            timelines,
            breakdown,
            ..
        } = sched;

        // ---- Makespan + critical path. ----
        let mut last: Option<usize> = None;
        let mut total = 0.0f64;
        for (i, &f) in finishes.iter().enumerate() {
            if last.is_none() || f > total {
                total = f;
                last = Some(i);
            }
        }
        let mut critical_path = Vec::new();
        let mut cursor = last;
        while let Some(i) = cursor {
            critical_path.push(CriticalStep {
                label: nodes[i].label.clone(),
                start: starts[i],
                end: finishes[i],
            });
            cursor = critical[i];
        }
        critical_path.reverse();

        // ---- Per-segment windows. ----
        let mut segments = Vec::with_capacity(seg_nodes.len());
        for &si in &seg_nodes {
            if let Payload::Seg {
                index,
                phases,
                load_nodes,
                energy_pj,
                ..
            } = &nodes[si].payload
            {
                let first = load_nodes
                    .iter()
                    .map(|&l| starts[l])
                    .fold(starts[si], f64::min);
                segments.push(SegmentWindow {
                    index: *index,
                    start: first,
                    end: finishes[si],
                    load_cycles: phases.load_phase,
                    exec_cycles: phases.exec_and_loose(),
                    compute_ops: phases.n_ops,
                    energy_pj: *energy_pj,
                });
            }
        }

        Ok(EngineReport {
            total_cycles: total,
            serialized_cycles: serialized,
            switch_process_cycles: switch_process,
            switches_to_compute,
            switches_to_memory,
            breakdown,
            segments,
            energy: total_energy,
            timelines,
            critical_path,
        })
    }
}

/// The discrete-event run over a built node graph: a binary heap of
/// completion events; a node is scheduled the moment its last
/// dependency resolves, and scheduling records its busy intervals and
/// per-array release times.
struct Scheduler {
    pending: Vec<usize>,
    dependents: Vec<Vec<usize>>,
    starts: Vec<f64>,
    finishes: Vec<f64>,
    critical: Vec<Option<usize>>,
    releases: Vec<Vec<(ArrayId, f64)>>,
    timelines: Vec<ArrayTimeline>,
    breakdown: BusyBreakdown,
    heap: BinaryHeap<Reverse<(TimeKey, usize)>>,
}

impl Scheduler {
    fn new(nodes: &[Node], timelines: Vec<ArrayTimeline>) -> Self {
        let n = nodes.len();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut pending: Vec<usize> = vec![0; n];
        for (i, node) in nodes.iter().enumerate() {
            pending[i] = node.deps.len();
            for &(d, _) in &node.deps {
                dependents[d].push(i);
            }
        }
        Scheduler {
            pending,
            dependents,
            starts: vec![0.0; n],
            finishes: vec![0.0; n],
            critical: vec![None; n],
            releases: vec![Vec::new(); n],
            timelines,
            breakdown: BusyBreakdown::default(),
            heap: BinaryHeap::new(),
        }
    }

    fn run(&mut self, nodes: &[Node], arch: &DualModeArch) {
        for i in 0..nodes.len() {
            if self.pending[i] == 0 {
                self.schedule(i, nodes, arch);
            }
        }
        let mut completed = 0usize;
        while let Some(Reverse((_, i))) = self.heap.pop() {
            completed += 1;
            let dependents = std::mem::take(&mut self.dependents[i]);
            for &d in &dependents {
                self.pending[d] -= 1;
                if self.pending[d] == 0 {
                    self.schedule(d, nodes, arch);
                }
            }
            self.dependents[i] = dependents;
        }
        debug_assert_eq!(completed, nodes.len(), "event graph must be acyclic");
    }

    fn schedule(&mut self, i: usize, nodes: &[Node], arch: &DualModeArch) {
        let node = &nodes[i];
        let mut start = 0.0f64;
        let mut crit = None;
        for &(d, on) in &node.deps {
            let t = match on {
                DepOn::Finish => self.finishes[d],
                DepOn::Array(a) => self.releases[d]
                    .iter()
                    .find(|(id, _)| *id == a)
                    .map_or(self.finishes[d], |&(_, t)| t),
            };
            if crit.is_none() || t > start {
                start = start.max(t);
                crit = Some(d);
            }
        }
        let finish = start + node.duration;
        self.starts[i] = start;
        self.finishes[i] = finish;
        self.critical[i] = crit;
        match &node.payload {
            Payload::Switch { kind, arrays } => {
                let stride = model::switch_stride(*kind, arch);
                for (r, &a) in arrays.iter().enumerate() {
                    self.timelines[a.index()].intervals.push(BusyInterval {
                        start: start + stride * r as f64,
                        end: start + stride * (r + 1) as f64,
                        kind: BusyKind::Switch,
                    });
                    self.releases[i].push((a, finish));
                }
                self.breakdown.switch += node.duration;
            }
            Payload::Load { arrays } => {
                let lat = arch.lat_write_array() as f64;
                for (j, &a) in arrays.iter().enumerate() {
                    self.timelines[a.index()].intervals.push(BusyInterval {
                        start: start + lat * j as f64,
                        end: start + lat * (j + 1) as f64,
                        kind: BusyKind::WeightLoad,
                    });
                    self.releases[i].push((a, finish));
                }
                self.breakdown.weight_load += node.duration;
            }
            Payload::Seg {
                lanes, mem_busy, ..
            } => {
                for (lane, arrays) in lanes {
                    let end = start + lane;
                    for &a in arrays {
                        self.timelines[a.index()].intervals.push(BusyInterval {
                            start,
                            end,
                            kind: BusyKind::Compute,
                        });
                        self.releases[i].push((a, end));
                        self.breakdown.compute += lane;
                    }
                }
                for &(a, busy) in mem_busy {
                    let end = start + busy;
                    self.timelines[a.index()].intervals.push(BusyInterval {
                        start,
                        end,
                        kind: BusyKind::MemTraffic,
                    });
                    self.releases[i].push((a, end));
                    self.breakdown.mem_traffic += busy;
                }
            }
            Payload::Mem { arrays } => {
                for &a in arrays {
                    self.timelines[a.index()].intervals.push(BusyInterval {
                        start,
                        end: finish,
                        kind: BusyKind::MemTraffic,
                    });
                    self.releases[i].push((a, finish));
                    self.breakdown.mem_traffic += node.duration;
                }
            }
            Payload::Vector => self.breakdown.vector += node.duration,
        }
        self.heap.push(Reverse((TimeKey(finish), i)));
    }
}

/// Heap key: finish time ordered totally (ties broken by node index in
/// the tuple the heap stores).
#[derive(Debug, PartialEq)]
struct TimeKey(f64);

impl Eq for TimeKey {}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Builds the event graph from a flow, tracking per-array last users,
/// the data chain, the bus and the vector unit.
struct Builder<'a> {
    arch: &'a DualModeArch,
    energy_model: &'a EnergyModel,
    seg_deps: Option<Vec<Vec<usize>>>,
    nodes: Vec<Node>,
    /// Last event touching each array (build order = touch order).
    last_user: Vec<Option<usize>>,
    /// Last data-producing event (segment exec, bulk memory, vector).
    data_node: Option<usize>,
    /// Last bulk-memory event (the shared off-chip/buffer port).
    bus_node: Option<usize>,
    /// Last top-level vector event (the single vector function unit).
    fu_node: Option<usize>,
    /// Node id of each segment's execution event, in segment order.
    seg_nodes: Vec<usize>,
    /// Mem/vector events since the previous segment: the next segment's
    /// prologue (its write-back/reload traffic), which gates it even
    /// when its producers lie further back.
    prologue: Vec<usize>,
    seg_count: usize,
    serialized: f64,
    switch_process: f64,
    switches_to_compute: u64,
    switches_to_memory: u64,
    energy: EnergyReport,
}

impl<'a> Builder<'a> {
    fn new(
        arch: &'a DualModeArch,
        energy_model: &'a EnergyModel,
        seg_deps: Option<Vec<Vec<usize>>>,
    ) -> Self {
        Builder {
            arch,
            energy_model,
            seg_deps,
            nodes: Vec::new(),
            last_user: vec![None; arch.n_arrays()],
            data_node: None,
            bus_node: None,
            fu_node: None,
            seg_nodes: Vec::new(),
            prologue: Vec::new(),
            seg_count: 0,
            serialized: 0.0,
            switch_process: 0.0,
            switches_to_compute: 0,
            switches_to_memory: 0,
            energy: EnergyReport::default(),
        }
    }

    fn array_deps(&self, arrays: &[ArrayId], deps: &mut Vec<(usize, DepOn)>) {
        for &a in arrays {
            if let Some(u) = self.last_user[a.index()] {
                deps.push((u, DepOn::Array(a)));
            }
        }
    }

    fn touch(&mut self, arrays: &[ArrayId], node: usize) {
        for &a in arrays {
            self.last_user[a.index()] = Some(node);
        }
    }

    fn push_stmt(&mut self, stmt: &Stmt, idx: usize) {
        match stmt {
            Stmt::Switch { kind, arrays } => {
                energy::accumulate_stmt(stmt, self.arch, self.energy_model, &mut self.energy);
                match kind {
                    SwitchKind::ToCompute => self.switches_to_compute += arrays.len() as u64,
                    SwitchKind::ToMemory => self.switches_to_memory += arrays.len() as u64,
                }
                let duration = model::switch_duration(*kind, arrays.len(), self.arch);
                self.serialized += duration;
                self.switch_process += duration;
                let mut deps = Vec::new();
                self.array_deps(arrays, &mut deps);
                let id = self.nodes.len();
                self.nodes.push(Node {
                    label: format!("switch#{idx}({} x{})", kind.keyword(), arrays.len()),
                    duration,
                    payload: Payload::Switch {
                        kind: *kind,
                        arrays: arrays.clone(),
                    },
                    deps,
                });
                self.touch(arrays, id);
            }
            Stmt::LoadWeights(w) => {
                energy::accumulate_stmt(stmt, self.arch, self.energy_model, &mut self.energy);
                let duration = model::load_duration(w.arrays.len(), self.arch);
                self.serialized += duration;
                self.switch_process += duration;
                let mut deps = Vec::new();
                self.array_deps(&w.arrays, &mut deps);
                let id = self.nodes.len();
                self.nodes.push(Node {
                    label: format!("load#{idx}({})", w.op),
                    duration,
                    payload: Payload::Load {
                        arrays: w.arrays.clone(),
                    },
                    deps,
                });
                self.touch(&w.arrays, id);
            }
            Stmt::Mem(m) => {
                energy::accumulate_stmt(stmt, self.arch, self.energy_model, &mut self.energy);
                let duration = model::mem_duration(m, self.arch);
                self.serialized += duration;
                self.switch_process += duration;
                let arrays = match &m.loc {
                    MemLoc::CimArrays(a) => a.clone(),
                    _ => Vec::new(),
                };
                let mut deps = Vec::new();
                if let Some(d) = self.data_node {
                    deps.push((d, DepOn::Finish));
                }
                if let Some(bus) = self.bus_node {
                    deps.push((bus, DepOn::Finish));
                }
                self.array_deps(&arrays, &mut deps);
                let id = self.nodes.len();
                self.nodes.push(Node {
                    label: format!("mem#{idx}({})", m.label),
                    duration,
                    payload: Payload::Mem {
                        arrays: arrays.clone(),
                    },
                    deps,
                });
                self.touch(&arrays, id);
                self.data_node = Some(id);
                self.bus_node = Some(id);
                self.prologue.push(id);
            }
            Stmt::Vector(v) => {
                energy::accumulate_stmt(stmt, self.arch, self.energy_model, &mut self.energy);
                let duration = model::vector_duration(v.flops);
                self.serialized += duration;
                let mut deps = Vec::new();
                if let Some(d) = self.data_node {
                    deps.push((d, DepOn::Finish));
                }
                if let Some(fu) = self.fu_node {
                    deps.push((fu, DepOn::Finish));
                }
                let id = self.nodes.len();
                self.nodes.push(Node {
                    label: format!("vector#{idx}({})", v.op),
                    duration,
                    payload: Payload::Vector,
                    deps,
                });
                self.data_node = Some(id);
                self.fu_node = Some(id);
                self.prologue.push(id);
            }
            Stmt::Parallel(body) => self.push_segment(body, idx),
            Stmt::Compute(_) => self.push_segment(std::slice::from_ref(stmt), idx),
        }
    }

    fn push_segment(&mut self, body: &[Stmt], _idx: usize) {
        let seg_index = self.seg_count;
        self.seg_count += 1;

        // Energy: per statement into the flow total (same order as
        // `energy::estimate`) and into this segment's own bucket.
        let mut seg_energy = EnergyReport::default();
        for s in body {
            energy::accumulate_stmt(s, self.arch, self.energy_model, &mut self.energy);
            energy::accumulate_stmt(s, self.arch, self.energy_model, &mut seg_energy);
        }

        let phases = model::segment_phases(body, self.arch);
        self.serialized += phases.load_phase;
        self.serialized += phases.exec_and_loose();

        // Weight-load events: each op's load waits only for its own
        // arrays, so loads on arrays the previous segment is done with
        // start while that segment still runs elsewhere.
        let mut load_nodes = Vec::new();
        for s in body {
            if let Stmt::LoadWeights(w) = s {
                let duration = model::load_duration(w.arrays.len(), self.arch);
                let mut deps = Vec::new();
                self.array_deps(&w.arrays, &mut deps);
                let id = self.nodes.len();
                self.nodes.push(Node {
                    label: format!("seg{seg_index}.load({})", w.op),
                    duration,
                    payload: Payload::Load {
                        arrays: w.arrays.clone(),
                    },
                    deps,
                });
                self.touch(&w.arrays, id);
                load_nodes.push(id);
            }
        }

        // Lanes and memory-array occupancy.
        let mut lanes = Vec::new();
        let mut mem_busy: Vec<(ArrayId, f64)> = Vec::new();
        let note_mem = |a: ArrayId, busy: f64, mem_busy: &mut Vec<(ArrayId, f64)>| {
            match mem_busy.iter_mut().find(|(id, _)| *id == a) {
                Some((_, b)) => *b = b.max(busy),
                None => mem_busy.push((a, busy)),
            }
        };
        let mut referenced: Vec<ArrayId> = Vec::new();
        for s in body {
            match s {
                Stmt::Compute(c) => {
                    let lane = model::lane_duration(c, body, self.arch);
                    lanes.push((lane, c.compute_arrays.clone()));
                    referenced.extend(&c.compute_arrays);
                    for &a in c.mem_in_arrays.iter().chain(&c.mem_out_arrays) {
                        note_mem(a, lane, &mut mem_busy);
                        referenced.push(a);
                    }
                }
                Stmt::Mem(m) => {
                    if let MemLoc::CimArrays(arrays) = &m.loc {
                        for &a in arrays {
                            note_mem(a, phases.exec_and_loose(), &mut mem_busy);
                            referenced.push(a);
                        }
                    }
                }
                _ => {}
            }
        }
        referenced.sort_unstable();
        referenced.dedup();

        // Dependencies: the load barrier, every referenced array, the
        // write-back prologue, and the data producers.
        let mut deps: Vec<(usize, DepOn)> = load_nodes.iter().map(|&l| (l, DepOn::Finish)).collect();
        self.array_deps(&referenced, &mut deps);
        match &self.seg_deps {
            Some(all) => {
                for node in self.prologue.drain(..) {
                    deps.push((node, DepOn::Finish));
                }
                if let Some(producers) = all.get(seg_index) {
                    for &p in producers {
                        if let Some(&n) = self.seg_nodes.get(p) {
                            deps.push((n, DepOn::Finish));
                        }
                    }
                }
            }
            None => {
                self.prologue.clear();
                if let Some(d) = self.data_node {
                    deps.push((d, DepOn::Finish));
                }
            }
        }

        let id = self.nodes.len();
        self.nodes.push(Node {
            label: format!("seg{seg_index}.exec"),
            duration: phases.exec_and_loose(),
            payload: Payload::Seg {
                index: seg_index,
                phases,
                lanes,
                mem_busy,
                load_nodes,
                energy_pj: seg_energy.total_pj(),
            },
            deps,
        });
        self.touch(&referenced, id);
        self.seg_nodes.push(id);
        self.data_node = Some(id);
    }
}

/// What [`SessionSimExt::simulate`] returns: the engine's enriched
/// report plus the typed diagnostics of the simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationOutcome {
    /// The event engine's report.
    pub report: EngineReport,
    /// Typed events describing the run (contains a
    /// [`DiagnosticEvent::Simulated`] summary).
    pub diagnostics: Diagnostics,
}

/// Surfaces the event engine through the `Session` API: compile with
/// the session, then execute the outcome on the same architecture.
///
/// ```
/// use cmswitch_arch::presets;
/// use cmswitch_core::{CompileRequest, Session};
/// use cmswitch_sim::SessionSimExt;
///
/// let session = Session::builder(presets::tiny()).build();
/// let graph = cmswitch_models::mlp::mlp(2, &[128, 256, 64]).unwrap();
/// let outcome = session.compile(CompileRequest::new(graph)).unwrap();
/// let sim = session.simulate(&outcome).unwrap();
/// assert!(sim.report.total_cycles > 0.0);
/// assert!(sim.diagnostics.simulated_cycles().is_some());
/// ```
pub trait SessionSimExt {
    /// Executes a compiled outcome on the event engine, emitting a
    /// [`DiagnosticEvent::Simulated`] summary.
    ///
    /// # Errors
    ///
    /// Returns [`MetaOpError`] if the compiled flow violates mode
    /// discipline (a compiler bug the simulator exists to catch).
    fn simulate(&self, outcome: &CompileOutcome) -> Result<SimulationOutcome, MetaOpError>;

    /// Co-schedules several compiled programs on this session's chip
    /// (see [`crate::tenancy::ChipScheduler`]).
    ///
    /// # Errors
    ///
    /// Returns [`TenancyError`] on admission rejection or malformed
    /// partition shares.
    fn co_simulate(
        &self,
        tenants: &[TenantProgram],
        options: CoSimOptions,
    ) -> Result<TenancyReport, TenancyError>;
}

impl SessionSimExt for Session {
    fn simulate(&self, outcome: &CompileOutcome) -> Result<SimulationOutcome, MetaOpError> {
        let report = EventEngine::new().simulate_program(&outcome.program, self.arch())?;
        let mut diagnostics = Diagnostics::new();
        diagnostics.push(DiagnosticEvent::Simulated {
            pipelined_cycles: report.total_cycles,
            serialized_cycles: report.serialized_cycles,
            energy_pj: report.energy.total_pj(),
            switches: report.switches_to_compute + report.switches_to_memory,
        });
        Ok(SimulationOutcome {
            report,
            diagnostics,
        })
    }

    fn co_simulate(
        &self,
        tenants: &[TenantProgram],
        options: CoSimOptions,
    ) -> Result<TenancyReport, TenancyError> {
        ChipScheduler::new(self.arch().clone())
            .with_options(options)
            .co_simulate(tenants)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmswitch_arch::presets;
    use cmswitch_core::{CompileRequest, Session};
    use cmswitch_metaop::{ComputeStmt, MemDirection, MemStmt, WeightLoadStmt};

    fn compute(op: &str, arrays: Vec<ArrayId>, m: usize) -> Stmt {
        Stmt::Compute(ComputeStmt {
            op: op.into(),
            compute_arrays: arrays,
            mem_in_arrays: vec![],
            mem_out_arrays: vec![],
            m,
            k: 64,
            n: 64,
            units: 1,
            in_bytes: (m * 64) as u64,
            out_bytes: (m * 64) as u64,
            weight_static: true,
        })
    }

    fn load(op: &str, arrays: Vec<ArrayId>) -> Stmt {
        let bytes = arrays.len() as u64 * 64;
        Stmt::LoadWeights(WeightLoadStmt {
            op: op.into(),
            arrays,
            bytes,
        })
    }

    #[test]
    fn single_segment_flow_matches_sequential_bit_exactly() {
        let arch = presets::tiny();
        let mut flow = Flow::new("single");
        flow.push(Stmt::switch(
            SwitchKind::ToCompute,
            vec![ArrayId(0), ArrayId(1)],
        ));
        flow.push(Stmt::Parallel(vec![
            load("a", vec![ArrayId(0)]),
            compute("a", vec![ArrayId(0)], 16),
            load("b", vec![ArrayId(1)]),
            compute("b", vec![ArrayId(1)], 256),
        ]));
        flow.push(Stmt::Mem(MemStmt {
            loc: MemLoc::Main,
            direction: MemDirection::Write,
            bytes: 2048,
            label: "final output".into(),
        }));
        let seq = SequentialModel.simulate(&flow, &arch).unwrap();
        let eng = EventEngine::new().simulate(&flow, &arch).unwrap();
        assert_eq!(eng.total_cycles.to_bits(), seq.total_cycles.to_bits());
        assert_eq!(eng.serialized_cycles.to_bits(), seq.total_cycles.to_bits());
        assert_eq!(eng.overlap_saved(), 0.0);
    }

    #[test]
    fn writeback_overlaps_next_segments_switch_and_load() {
        // seg0 on arrays {0,1}; write-back; seg1 on arrays {2,3}. The
        // write-back streams on the bus while arrays 2,3 switch and
        // load, so the engine beats the serial replay.
        let arch = presets::tiny();
        let mut flow = Flow::new("overlap");
        flow.push(Stmt::switch(
            SwitchKind::ToCompute,
            vec![ArrayId(0), ArrayId(1)],
        ));
        flow.push(Stmt::Parallel(vec![
            load("a", vec![ArrayId(0), ArrayId(1)]),
            compute("a", vec![ArrayId(0), ArrayId(1)], 64),
        ]));
        flow.push(Stmt::Mem(MemStmt {
            loc: MemLoc::Main,
            direction: MemDirection::Write,
            bytes: 1 << 16,
            label: "seg1 writeback".into(),
        }));
        flow.push(Stmt::switch(
            SwitchKind::ToCompute,
            vec![ArrayId(2), ArrayId(3)],
        ));
        flow.push(Stmt::Parallel(vec![
            load("b", vec![ArrayId(2), ArrayId(3)]),
            compute("b", vec![ArrayId(2), ArrayId(3)], 64),
        ]));
        let seq = SequentialModel.simulate(&flow, &arch).unwrap();
        let eng = EventEngine::new().simulate(&flow, &arch).unwrap();
        assert!(
            eng.total_cycles < seq.total_cycles,
            "engine {} vs sequential {}",
            eng.total_cycles,
            seq.total_cycles
        );
        assert!(eng.overlap_saved() > 0.0);
        // The timelines prove the pipelining: seg1's switch and weight
        // load on arrays 2,3 completed while seg0 still ran on arrays
        // 0,1 — i.e. strictly before the write-back (which cannot even
        // *start* until seg0's data is complete) finished.
        let seg0_end = eng.timelines[0]
            .intervals
            .iter()
            .chain(&eng.timelines[1].intervals)
            .map(|iv| iv.end)
            .fold(0.0f64, f64::max);
        for t in [&eng.timelines[2], &eng.timelines[3]] {
            let prep: Vec<_> = t
                .intervals
                .iter()
                .filter(|iv| matches!(iv.kind, BusyKind::Switch | BusyKind::WeightLoad))
                .collect();
            assert!(!prep.is_empty(), "array {:?} never prepared", t.array);
            for iv in prep {
                assert!(
                    iv.end <= seg0_end,
                    "array {:?}: {:?} did not overlap seg0 (ends {seg0_end})",
                    t.array,
                    iv
                );
            }
        }
    }

    #[test]
    fn independent_segments_overlap_with_op_deps() {
        // Compile a program, then rewrite its op_deps so segment 1 does
        // not consume segment 0: the engine may start both at once.
        let arch = presets::tiny();
        let g = cmswitch_models::mlp::mlp(1, &[256, 256, 256, 64]).unwrap();
        let session = Session::builder(arch.clone()).build();
        let mut program = session.compile_graph(&g).unwrap();
        assert!(program.segments.len() >= 2, "need a multi-segment plan");
        let chained = EventEngine::new().simulate_program(&program, &arch).unwrap();
        // Sever all inter-segment dependencies.
        program.op_deps.clear();
        let free = EventEngine::new().simulate_program(&program, &arch).unwrap();
        assert!(
            free.total_cycles <= chained.total_cycles,
            "independent segments must not schedule later: {} vs {}",
            free.total_cycles,
            chained.total_cycles
        );
    }

    #[test]
    fn session_simulate_emits_diagnostics() {
        let session = Session::builder(presets::tiny()).build();
        let g = cmswitch_models::mlp::mlp(2, &[128, 256, 128]).unwrap();
        let outcome = session.compile(CompileRequest::new(g)).unwrap();
        let sim = session.simulate(&outcome).unwrap();
        let (pipelined, serialized) = sim.diagnostics.simulated_cycles().unwrap();
        assert!(pipelined > 0.0 && pipelined <= serialized);
        assert_eq!(pipelined, sim.report.total_cycles);
        assert!(!sim.report.critical_path.is_empty());
        assert!(sim.report.energy.total_pj() > 0.0);
        // Start times are monotone along the critical chain (windows
        // may overlap: a predecessor can release the binding resource
        // before its own end), and the chain ends at the makespan.
        for pair in sim.report.critical_path.windows(2) {
            assert!(pair[0].start <= pair[1].start);
        }
        let last = sim.report.critical_path.last().unwrap();
        assert_eq!(last.end, sim.report.total_cycles);
    }

    #[test]
    fn engine_dominates_sequential_and_matches_energy() {
        let arch = presets::tiny();
        let g = cmswitch_models::mlp::mlp(2, &[256, 512, 256, 128]).unwrap();
        let session = Session::builder(arch.clone()).build();
        let program = session.compile_graph(&g).unwrap();
        let seq = SequentialModel.simulate(&program.flow, &arch).unwrap();
        let eng = EventEngine::new().simulate_program(&program, &arch).unwrap();
        assert!(eng.total_cycles <= seq.total_cycles);
        assert_eq!(eng.serialized_cycles.to_bits(), seq.total_cycles.to_bits());
        let direct = energy::estimate(&program.flow, &arch, &EnergyModel::default());
        assert_eq!(eng.energy.total_pj().to_bits(), direct.total_pj().to_bits());
        assert!(eng.total_cycles >= latency_lower_bound(&program.flow, &arch));
    }

    #[test]
    fn timelines_never_overlap_and_histogram_counts_arrays() {
        let arch = presets::tiny();
        let g = cmswitch_models::mlp::mlp(2, &[128, 256, 128, 64]).unwrap();
        let program = Session::builder(arch.clone())
            .build()
            .compile_graph(&g)
            .unwrap();
        let eng = EventEngine::new().simulate_program(&program, &arch).unwrap();
        for t in &eng.timelines {
            for pair in t.intervals.windows(2) {
                assert!(
                    pair[0].end <= pair[1].start + 1e-9,
                    "array {:?}: {:?} overlaps {:?}",
                    t.array,
                    pair[0],
                    pair[1]
                );
            }
        }
        let hist = eng.utilization_histogram();
        assert_eq!(
            hist.iter().sum::<u64>() as usize,
            arch.n_arrays(),
            "every array lands in exactly one bucket"
        );
        assert_eq!(eng.segments.len(), program.segments.len());
    }
}
