//! Simulation reports.

/// Timing of one `parallel` segment.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentTiming {
    /// Segment index in flow order.
    pub index: usize,
    /// Cycles the segment body took (slowest lane).
    pub cycles: f64,
    /// Cycles of the slowest lane's weight load component.
    pub weight_load_cycles: f64,
    /// Number of compute operators in the segment.
    pub compute_ops: usize,
}

/// Full timing report of a flow execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimReport {
    /// End-to-end cycles.
    pub total_cycles: f64,
    /// Cycles spent in `CM.switch` statements (pure driver reconfig).
    pub switch_cycles: f64,
    /// Cycles in top-level memory statements (write-backs / reloads of
    /// activations between segments).
    pub writeback_cycles: f64,
    /// Cycles inside segments (pipelined bodies).
    pub segment_cycles: f64,
    /// Cycles in top-level vector statements.
    pub vector_cycles: f64,
    /// The full mode-switch *process* overhead (Fig. 10 steps 1 + 2):
    /// write-backs plus switches — the quantity §5.5 reports as 3-5 %.
    pub switch_process_cycles: f64,
    /// Per-segment detail.
    pub segments: Vec<SegmentTiming>,
    /// Total arrays switched to compute mode.
    pub switches_to_compute: u64,
    /// Total arrays switched to memory mode.
    pub switches_to_memory: u64,
}

impl SimReport {
    /// Fraction of total time in the mode-switch process (§5.5 metric).
    pub fn switch_process_fraction(&self) -> f64 {
        if self.total_cycles == 0.0 {
            0.0
        } else {
            self.switch_process_cycles / self.total_cycles
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_handles_zero() {
        let r = SimReport::default();
        assert_eq!(r.switch_process_fraction(), 0.0);
    }

    #[test]
    fn fraction_computes() {
        let r = SimReport {
            total_cycles: 100.0,
            switch_process_cycles: 4.0,
            ..SimReport::default()
        };
        assert!((r.switch_process_fraction() - 0.04).abs() < 1e-12);
    }
}
