//! Simulation reports: the sequential [`SimReport`] and the event
//! engine's enriched [`EngineReport`] with per-array timelines,
//! utilization and critical-path data.

use cmswitch_arch::{ArrayId, ArrayMode};

use crate::energy::EnergyReport;

/// Timing of one `parallel` segment.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentTiming {
    /// Segment index in flow order.
    pub index: usize,
    /// Cycles the segment body took (slowest lane).
    pub cycles: f64,
    /// Cycles of the slowest lane's weight load component.
    pub weight_load_cycles: f64,
    /// Number of compute operators in the segment.
    pub compute_ops: usize,
}

/// Full timing report of a flow execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimReport {
    /// End-to-end cycles.
    pub total_cycles: f64,
    /// Cycles spent in `CM.switch` statements (pure driver reconfig).
    pub switch_cycles: f64,
    /// Cycles in top-level memory statements (write-backs / reloads of
    /// activations between segments).
    pub writeback_cycles: f64,
    /// Cycles inside segments (pipelined bodies).
    pub segment_cycles: f64,
    /// Cycles in top-level vector statements.
    pub vector_cycles: f64,
    /// The full mode-switch *process* overhead (Fig. 10 steps 1 + 2):
    /// write-backs plus switches — the quantity §5.5 reports as 3-5 %.
    pub switch_process_cycles: f64,
    /// Per-segment detail.
    pub segments: Vec<SegmentTiming>,
    /// Total arrays switched to compute mode.
    pub switches_to_compute: u64,
    /// Total arrays switched to memory mode.
    pub switches_to_memory: u64,
}

impl SimReport {
    /// Fraction of total time in the mode-switch process (§5.5 metric).
    pub fn switch_process_fraction(&self) -> f64 {
        if self.total_cycles == 0.0 {
            0.0
        } else {
            self.switch_process_cycles / self.total_cycles
        }
    }
}

/// What kind of work kept an array busy during a [`BusyInterval`].
///
/// The kind implies the array's mode: [`BusyKind::WeightLoad`] and
/// [`BusyKind::Compute`] happen in compute mode, [`BusyKind::MemTraffic`]
/// in memory mode, and [`BusyKind::Switch`] is the transition itself —
/// so aggregating intervals by kind (see [`BusyBreakdown`]) *is* the
/// per-mode occupancy breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusyKind {
    /// The array was being reconfigured between modes.
    Switch,
    /// Weights (or a runtime operand) were being written into the array.
    WeightLoad,
    /// The array executed streamed MACs in compute mode.
    Compute,
    /// The array buffered memory-mode traffic for an operator or a bulk
    /// memory statement.
    MemTraffic,
}

/// One busy window on one array's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusyInterval {
    /// Start cycle.
    pub start: f64,
    /// End cycle (`end >= start`).
    pub end: f64,
    /// What occupied the array.
    pub kind: BusyKind,
}

impl BusyInterval {
    /// Length of the interval in cycles.
    pub fn cycles(&self) -> f64 {
        self.end - self.start
    }
}

/// The per-array busy timeline the event engine builds while scheduling.
///
/// Intervals are appended in start order and never overlap (shared
/// endpoints are allowed): an array serves one event at a time — that is
/// the resource constraint the engine schedules around, and
/// `tests/sim_invariants.rs` verifies it holds on every compiled flow.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayTimeline {
    /// The array this timeline belongs to.
    pub array: ArrayId,
    /// The array's mode after the flow completed.
    pub final_mode: ArrayMode,
    /// Busy windows in chronological order.
    pub intervals: Vec<BusyInterval>,
}

impl ArrayTimeline {
    /// Total busy cycles across all intervals.
    pub fn busy_cycles(&self) -> f64 {
        self.intervals.iter().map(BusyInterval::cycles).sum()
    }

    /// Busy cycles of one interval kind.
    pub fn busy_cycles_of(&self, kind: BusyKind) -> f64 {
        self.intervals
            .iter()
            .filter(|i| i.kind == kind)
            .map(BusyInterval::cycles)
            .sum()
    }
}

/// Array-cycle occupancy aggregated over every timeline, by busy kind
/// (the per-mode breakdown — see [`BusyKind`]) plus the vector
/// function-unit's serialized cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BusyBreakdown {
    /// Array-cycles spent in mode transitions.
    pub switch: f64,
    /// Array-cycles spent writing weights/operands (compute mode).
    pub weight_load: f64,
    /// Array-cycles spent executing MACs (compute mode).
    pub compute: f64,
    /// Array-cycles spent buffering traffic (memory mode).
    pub mem_traffic: f64,
    /// Serialized cycles of top-level vector statements (not
    /// array-cycles: the vector unit is a single shared resource).
    pub vector: f64,
}

impl BusyBreakdown {
    /// Array-cycles in compute mode (weight loads + execution).
    pub fn compute_mode(&self) -> f64 {
        self.weight_load + self.compute
    }

    /// Array-cycles in memory mode.
    pub fn memory_mode(&self) -> f64 {
        self.mem_traffic
    }

    /// Total array-cycles across every busy kind (switching included;
    /// the vector unit is not an array and is excluded).
    pub fn total_array_cycles(&self) -> f64 {
        self.switch + self.weight_load + self.compute + self.mem_traffic
    }
}

/// Time-averaged occupancy of the array pool over a schedule's makespan:
/// the fractions of total array-time (`n_arrays × makespan`) spent in
/// each mode. This is the duty-cycle input an average-power model needs —
/// mode-dependent static power weighs compute-mode and memory-mode
/// residency differently, and everything not busy is idle.
///
/// Produced by [`EngineReport::mode_occupancy`]; fractions are clamped to
/// `[0, 1]` and `compute + memory + switching + idle == 1` up to float
/// rounding (idle absorbs the remainder).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ModeOccupancy {
    /// Fraction of array-time in compute mode (weight loads + MACs).
    pub compute: f64,
    /// Fraction of array-time in memory mode (buffered traffic).
    pub memory: f64,
    /// Fraction of array-time spent switching between modes.
    pub switching: f64,
    /// Fraction of array-time idle.
    pub idle: f64,
}

/// Scheduling window of one segment under the event engine.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentWindow {
    /// Segment index in flow order.
    pub index: usize,
    /// Cycle the segment's weight-load barrier started.
    pub start: f64,
    /// Cycle the segment's slowest lane finished.
    pub end: f64,
    /// Weight-load barrier cycles (Eq. 2 `max_o Com_o · Latency_write`).
    pub load_cycles: f64,
    /// Post-barrier execution cycles (slowest lane / loose memory work).
    pub exec_cycles: f64,
    /// Number of compute operators in the segment.
    pub compute_ops: usize,
    /// Energy of the segment body's statements, picojoules.
    pub energy_pj: f64,
}

/// One step of the engine's critical path: the chain of events whose
/// start times bound each other, ending at the event that finished last.
///
/// Start times are non-decreasing along the chain, but consecutive
/// windows may overlap: a predecessor can hand over the binding
/// resource *before* its own end (a segment releases each lane's
/// arrays as the lane drains), and each step reports the event's full
/// window, not just the handoff instant.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalStep {
    /// Human-readable event label (e.g. `seg2.exec`, `switch#5(TOC x12)`).
    pub label: String,
    /// Cycle the event started.
    pub start: f64,
    /// Cycle the event finished.
    pub end: f64,
}

/// The event engine's enriched report: end-to-end makespan plus the
/// per-segment, per-mode, per-array detail the sequential [`SimReport`]
/// cannot express.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// End-to-end makespan of the event schedule (cycles).
    pub total_cycles: f64,
    /// What the same flow costs fully serialized — bit-identical to
    /// [`crate::timing::simulate`]'s `total_cycles`, accumulated from
    /// the same shared cost kernel in the same order.
    pub serialized_cycles: f64,
    /// Serialized cycles of the mode-switch process (switch statements
    /// plus top-level write-backs/reloads — Fig. 10 steps 1 + 2).
    pub switch_process_cycles: f64,
    /// Total arrays switched to compute mode.
    pub switches_to_compute: u64,
    /// Total arrays switched to memory mode.
    pub switches_to_memory: u64,
    /// Array-cycle occupancy by kind (the per-mode breakdown).
    pub breakdown: BusyBreakdown,
    /// Per-segment scheduling windows, in flow order.
    pub segments: Vec<SegmentWindow>,
    /// Energy of the whole flow (schedule-invariant, so identical to
    /// [`crate::energy::estimate`] on the same flow).
    pub energy: EnergyReport,
    /// Per-array busy timelines.
    pub timelines: Vec<ArrayTimeline>,
    /// The critical path, earliest event first.
    pub critical_path: Vec<CriticalStep>,
}

impl EngineReport {
    /// Cycles saved by overlapping events instead of serializing them.
    pub fn overlap_saved(&self) -> f64 {
        (self.serialized_cycles - self.total_cycles).max(0.0)
    }

    /// Fraction of the makespan the serialized mode-switch process
    /// represents (§5.5 metric; overlap can hide part of it, so this is
    /// an upper bound on the visible overhead).
    pub fn switch_process_fraction(&self) -> f64 {
        if self.total_cycles == 0.0 {
            0.0
        } else {
            self.switch_process_cycles / self.total_cycles
        }
    }

    /// Per-array utilization: busy cycles over the makespan, in array
    /// order. Zero makespan yields zeros.
    pub fn utilization(&self) -> Vec<f64> {
        self.timelines
            .iter()
            .map(|t| {
                if self.total_cycles > 0.0 {
                    t.busy_cycles() / self.total_cycles
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// The per-mode duty cycle of the whole array pool: busy-kind totals
    /// over `n_arrays × makespan`, idle as the remainder. `n_arrays`
    /// should be the chip's array count — timelines only exist for
    /// arrays the schedule touched, so deriving the pool size from
    /// `timelines.len()` would overstate occupancy on underused chips.
    /// A zero makespan or zero `n_arrays` reports all-idle.
    pub fn mode_occupancy(&self, n_arrays: usize) -> ModeOccupancy {
        let denom = self.total_cycles * n_arrays as f64;
        if denom <= 0.0 {
            return ModeOccupancy {
                idle: 1.0,
                ..ModeOccupancy::default()
            };
        }
        let frac = |c: f64| (c / denom).clamp(0.0, 1.0);
        let compute = frac(self.breakdown.compute_mode());
        let memory = frac(self.breakdown.memory_mode());
        let switching = frac(self.breakdown.switch);
        ModeOccupancy {
            compute,
            memory,
            switching,
            idle: (1.0 - compute - memory - switching).clamp(0.0, 1.0),
        }
    }

    /// Histogram of per-array utilization percentages in 11 buckets:
    /// `0-9 %`, `10-19 %`, …, `90-99 %`, and exactly-100 % arrays in the
    /// last bucket. Percentages are rounded to nearest
    /// ([`utilization_percent`]), so a 99.5 %-busy array counts as 100 %.
    pub fn utilization_histogram(&self) -> [u64; 11] {
        let mut buckets = [0u64; 11];
        for u in self.utilization() {
            let pct = utilization_percent(u);
            buckets[usize::from(pct) / 10] += 1;
        }
        buckets
    }
}

/// Converts a busy fraction into a whole utilization percentage,
/// rounding to nearest and clamping to `0..=100`.
///
/// Rounding (not truncation) matters at the top of the scale: an array
/// busy 99.5 % of the makespan reports 100 %, not 99 % — truncating
/// toward zero would under-report every almost-saturated array by a
/// whole point and keep the 100 % histogram bucket empty on real
/// workloads.
pub fn utilization_percent(fraction: f64) -> u8 {
    let pct = (fraction * 100.0).round();
    if pct <= 0.0 {
        0
    } else if pct >= 100.0 {
        100
    } else {
        pct as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_handles_zero() {
        let r = SimReport::default();
        assert_eq!(r.switch_process_fraction(), 0.0);
    }

    #[test]
    fn fraction_computes() {
        let r = SimReport {
            total_cycles: 100.0,
            switch_process_cycles: 4.0,
            ..SimReport::default()
        };
        assert!((r.switch_process_fraction() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn utilization_percent_rounds_to_nearest() {
        // The 99.5 % → 100 % boundary: truncation toward zero reported
        // 99 here; round-to-nearest must report 100.
        assert_eq!(utilization_percent(0.995), 100);
        assert_eq!(utilization_percent(0.9949), 99);
        assert_eq!(utilization_percent(0.004), 0);
        assert_eq!(utilization_percent(0.005), 1);
        assert_eq!(utilization_percent(0.0), 0);
        assert_eq!(utilization_percent(1.0), 100);
        // Clamped, not wrapped, outside the meaningful range.
        assert_eq!(utilization_percent(1.7), 100);
        assert_eq!(utilization_percent(-0.2), 0);
    }

    #[test]
    fn timeline_busy_accounting() {
        let t = ArrayTimeline {
            array: ArrayId(3),
            final_mode: ArrayMode::Memory,
            intervals: vec![
                BusyInterval {
                    start: 0.0,
                    end: 4.0,
                    kind: BusyKind::Switch,
                },
                BusyInterval {
                    start: 4.0,
                    end: 10.0,
                    kind: BusyKind::Compute,
                },
            ],
        };
        assert_eq!(t.busy_cycles(), 10.0);
        assert_eq!(t.busy_cycles_of(BusyKind::Switch), 4.0);
        assert_eq!(t.busy_cycles_of(BusyKind::MemTraffic), 0.0);
    }

    #[test]
    fn mode_occupancy_partitions_array_time() {
        let r = EngineReport {
            total_cycles: 100.0,
            serialized_cycles: 100.0,
            switch_process_cycles: 0.0,
            switches_to_compute: 0,
            switches_to_memory: 0,
            breakdown: BusyBreakdown {
                switch: 20.0,
                weight_load: 30.0,
                compute: 50.0,
                mem_traffic: 100.0,
                vector: 7.0, // not array-time; must not appear below
            },
            segments: Vec::new(),
            energy: EnergyReport::default(),
            timelines: Vec::new(),
            critical_path: Vec::new(),
        };
        assert_eq!(r.breakdown.total_array_cycles(), 200.0);
        let occ = r.mode_occupancy(4);
        assert!((occ.compute - 0.2).abs() < 1e-12);
        assert!((occ.memory - 0.25).abs() < 1e-12);
        assert!((occ.switching - 0.05).abs() < 1e-12);
        assert!((occ.idle - 0.5).abs() < 1e-12);
        assert!(
            (occ.compute + occ.memory + occ.switching + occ.idle - 1.0).abs() < 1e-12
        );
        // Degenerate pools report all-idle instead of dividing by zero.
        assert_eq!(r.mode_occupancy(0).idle, 1.0);
    }

    #[test]
    fn histogram_buckets_full_utilization_separately() {
        let timeline = |busy: f64| ArrayTimeline {
            array: ArrayId(0),
            final_mode: ArrayMode::Memory,
            intervals: vec![BusyInterval {
                start: 0.0,
                end: busy,
                kind: BusyKind::Compute,
            }],
        };
        let r = EngineReport {
            total_cycles: 100.0,
            serialized_cycles: 100.0,
            switch_process_cycles: 0.0,
            switches_to_compute: 0,
            switches_to_memory: 0,
            breakdown: BusyBreakdown::default(),
            segments: Vec::new(),
            energy: EnergyReport::default(),
            timelines: vec![timeline(99.5), timeline(94.0), timeline(5.0)],
            critical_path: Vec::new(),
        };
        let h = r.utilization_histogram();
        assert_eq!(h[10], 1, "99.5% rounds to the 100% bucket");
        assert_eq!(h[9], 1);
        assert_eq!(h[0], 1);
    }
}
