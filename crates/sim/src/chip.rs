//! Chip state: per-array modes and resident data, with dynamic mode
//! discipline enforcement.

use cmswitch_arch::{ArrayId, ArrayMode, DualModeArch};
use cmswitch_metaop::{MemLoc, MetaOpError, Stmt};

/// The runtime state of the dual-mode array fabric.
#[derive(Debug, Clone)]
pub struct ChipState {
    modes: Vec<ArrayMode>,
    /// Label of the operator whose weights (or runtime operand) currently
    /// occupy each compute-mode array.
    resident: Vec<Option<String>>,
}

impl ChipState {
    /// Fresh chip: every array in memory mode (the DynaPlasia reset
    /// state), nothing resident.
    pub fn new(arch: &DualModeArch) -> Self {
        ChipState {
            modes: vec![ArrayMode::Memory; arch.n_arrays()],
            resident: vec![None; arch.n_arrays()],
        }
    }

    /// Current mode of an array.
    pub fn mode(&self, id: ArrayId) -> ArrayMode {
        self.modes[id.index()]
    }

    /// Number of arrays currently in `mode`.
    pub fn count_in_mode(&self, mode: ArrayMode) -> usize {
        self.modes.iter().filter(|&&m| m == mode).count()
    }

    /// The operator resident on a compute array, if any.
    pub fn resident(&self, id: ArrayId) -> Option<&str> {
        self.resident[id.index()].as_deref()
    }

    /// Applies one (non-parallel) statement, enforcing mode discipline.
    ///
    /// # Errors
    ///
    /// Returns [`MetaOpError::ModeViolation`] when a statement uses an
    /// array in the wrong mode.
    pub fn apply(&mut self, stmt: &Stmt, stmt_idx: usize) -> Result<(), MetaOpError> {
        match stmt {
            Stmt::Switch { kind, arrays } => {
                for &a in arrays {
                    self.modes[a.index()] = kind.target_mode();
                    if kind.target_mode() == ArrayMode::Memory {
                        self.resident[a.index()] = None;
                    }
                }
            }
            Stmt::LoadWeights(w) => {
                for &a in &w.arrays {
                    if self.modes[a.index()] != ArrayMode::Compute {
                        return Err(MetaOpError::ModeViolation {
                            array: a,
                            stmt: stmt_idx,
                            detail: format!("weight load for {} on memory-mode array", w.op),
                        });
                    }
                    self.resident[a.index()] = Some(w.op.clone());
                }
            }
            Stmt::Compute(c) => {
                for &a in &c.compute_arrays {
                    if self.modes[a.index()] != ArrayMode::Compute {
                        return Err(MetaOpError::ModeViolation {
                            array: a,
                            stmt: stmt_idx,
                            detail: format!("{} computes on memory-mode array", c.op),
                        });
                    }
                }
                for &a in c.mem_in_arrays.iter().chain(&c.mem_out_arrays) {
                    if self.modes[a.index()] != ArrayMode::Memory {
                        return Err(MetaOpError::ModeViolation {
                            array: a,
                            stmt: stmt_idx,
                            detail: format!("{} buffers on compute-mode array", c.op),
                        });
                    }
                }
                // Dynamic matmuls write their operand in place.
                if !c.weight_static {
                    for &a in &c.compute_arrays {
                        self.resident[a.index()] = Some(c.op.clone());
                    }
                }
            }
            Stmt::Mem(m) => {
                if let MemLoc::CimArrays(arrays) = &m.loc {
                    for &a in arrays {
                        if self.modes[a.index()] != ArrayMode::Memory {
                            return Err(MetaOpError::ModeViolation {
                                array: a,
                                stmt: stmt_idx,
                                detail: format!("`{}` on compute-mode array", m.label),
                            });
                        }
                    }
                }
            }
            Stmt::Vector(_) => {}
            Stmt::Parallel(_) => {
                // Caller iterates parallel bodies itself.
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmswitch_arch::presets;
    use cmswitch_metaop::{SwitchKind, WeightLoadStmt};

    #[test]
    fn starts_all_memory() {
        let chip = ChipState::new(&presets::tiny());
        assert_eq!(chip.count_in_mode(ArrayMode::Memory), 8);
        assert_eq!(chip.count_in_mode(ArrayMode::Compute), 0);
    }

    #[test]
    fn switch_updates_modes_and_clears_residency() {
        let arch = presets::tiny();
        let mut chip = ChipState::new(&arch);
        chip.apply(&Stmt::switch(SwitchKind::ToCompute, vec![ArrayId(0)]), 0)
            .unwrap();
        assert_eq!(chip.mode(ArrayId(0)), ArrayMode::Compute);
        chip.apply(
            &Stmt::LoadWeights(WeightLoadStmt {
                op: "fc".into(),
                arrays: vec![ArrayId(0)],
                bytes: 8,
            }),
            1,
        )
        .unwrap();
        assert_eq!(chip.resident(ArrayId(0)), Some("fc"));
        chip.apply(&Stmt::switch(SwitchKind::ToMemory, vec![ArrayId(0)]), 2)
            .unwrap();
        assert_eq!(chip.resident(ArrayId(0)), None);
    }

    #[test]
    fn rejects_load_on_memory_array() {
        let arch = presets::tiny();
        let mut chip = ChipState::new(&arch);
        let err = chip
            .apply(
                &Stmt::LoadWeights(WeightLoadStmt {
                    op: "fc".into(),
                    arrays: vec![ArrayId(3)],
                    bytes: 8,
                }),
                0,
            )
            .unwrap_err();
        assert!(matches!(err, MetaOpError::ModeViolation { .. }));
    }
}
