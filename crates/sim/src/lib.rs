//! Dual-mode CIM chip simulator.
//!
//! Substitutes the paper's evaluation stack (§5.1): a timing simulator in
//! the spirit of the NeuroSim/MNSim derivatives the authors modified for
//! DynaPlasia, plus a functional simulator standing in for the PyTorch
//! cross-check.
//!
//! * [`engine`] is the event-driven, cycle-level simulator: per-array
//!   timelines, a binary-heap completion queue, explicit mode-switch
//!   events, shared-bus contention and inter-segment pipelining. It
//!   returns an enriched [`EngineReport`] (per-segment and per-mode
//!   latency/energy breakdown, array-utilization histogram, critical
//!   path) and is surfaced through the `Session` API by
//!   [`SessionSimExt`].
//! * [`timing`] is the sequential reference model ([`SequentialModel`]):
//!   it executes a compiled meta-operator flow statement by statement
//!   against the chip state, charging the Table 2 latencies. The event
//!   engine prices statements through the same [`model`] kernel and
//!   must dominate it (equal on serial flows, faster wherever overlap
//!   is legal).
//! * [`energy`] estimates per-component energy of a flow
//!   (schedule-invariant, so both simulators report identical totals).
//! * [`functional`] executes the *graph* numerically with int8-quantized
//!   CIM semantics (im2col + integer matmul, §2.1.2) and compares against
//!   the f32 reference from `cmswitch-tensor` — verifying that what the
//!   compiler schedules is what the network computes.
//! * [`chip`] tracks per-array modes/contents and dynamically enforces
//!   mode discipline while flows execute.
//! * [`tenancy`] co-schedules several compiled programs onto one chip
//!   (static partitions or mode-switch-aware time-slicing) and drives
//!   continuous-batching autoregressive decode with mid-flight
//!   re-segmentation ([`ChipScheduler`], [`DecodeLoop`]).
//!
//! # Example
//!
//! ```
//! use cmswitch_arch::presets;
//! use cmswitch_core::Session;
//! use cmswitch_sim::{EventEngine, SequentialModel};
//!
//! let graph = cmswitch_models::mlp::mlp(2, &[128, 256, 64]).unwrap();
//! let session = Session::builder(presets::tiny()).build();
//! let program = session.compile_graph(&graph).unwrap();
//! let sequential = SequentialModel.simulate(&program.flow, session.arch()).unwrap();
//! let pipelined = EventEngine::new()
//!     .simulate_program(&program, session.arch())
//!     .unwrap();
//! assert!(pipelined.total_cycles > 0.0);
//! assert!(pipelined.total_cycles <= sequential.total_cycles);
//! ```

#![warn(missing_docs)]

pub mod chip;
pub mod energy;
pub mod engine;
pub mod functional;
pub mod model;
pub mod stats;
pub mod tenancy;
pub mod timing;

pub use energy::{EnergyModel, EnergyReport};
pub use engine::{
    latency_lower_bound, EventEngine, SequentialModel, SessionSimExt, SimulationOutcome,
};
pub use stats::{
    utilization_percent, ArrayTimeline, BusyBreakdown, BusyInterval, BusyKind, CriticalStep,
    EngineReport, ModeOccupancy, SegmentTiming, SegmentWindow, SimReport,
};
pub use tenancy::{
    ChipScheduler, CoSimOptions, DecodeLoop, DecodeOptions, DecodeReport, DecodeTenant,
    DecodeTenantReport, SwitchAmortization, TenancyError, TenancyPolicy, TenancyReport,
    TenantProgram, TenantReport,
};
