//! Dual-mode CIM chip simulator.
//!
//! Substitutes the paper's evaluation stack (§5.1): a timing simulator in
//! the spirit of the NeuroSim/MNSim derivatives the authors modified for
//! DynaPlasia, plus a functional simulator standing in for the PyTorch
//! cross-check.
//!
//! * [`timing`] executes a compiled meta-operator flow statement by
//!   statement against the chip state, charging the Table 2 latencies:
//!   compute passes, memory/main-memory bandwidth, per-array mode
//!   switches, weight loads and write-backs. `parallel` blocks execute
//!   pipelined (lanes overlap, the segment takes its slowest lane).
//! * [`functional`] executes the *graph* numerically with int8-quantized
//!   CIM semantics (im2col + integer matmul, §2.1.2) and compares against
//!   the f32 reference from `cmswitch-tensor` — verifying that what the
//!   compiler schedules is what the network computes.
//! * [`chip`] tracks per-array modes/contents and dynamically enforces
//!   mode discipline while flows execute.
//!
//! # Example
//!
//! ```
//! use cmswitch_arch::presets;
//! use cmswitch_core::Session;
//! use cmswitch_sim::timing::simulate;
//!
//! let graph = cmswitch_models::mlp::mlp(2, &[128, 256, 64]).unwrap();
//! let session = Session::builder(presets::tiny()).build();
//! let program = session.compile_graph(&graph).unwrap();
//! let report = simulate(&program.flow, session.arch()).unwrap();
//! assert!(report.total_cycles > 0.0);
//! ```

pub mod chip;
pub mod energy;
pub mod functional;
pub mod stats;
pub mod timing;

pub use energy::{EnergyModel, EnergyReport};
pub use stats::{SegmentTiming, SimReport};
