//! The shared statement-cost kernel.
//!
//! Both simulators — the [`crate::timing`] sequential replay and the
//! event-driven [`crate::engine`] — charge every statement through the
//! functions in this module, so the two models price identical work
//! identically (bit-for-bit). They may only differ in *scheduling*: the
//! sequential model serializes statements in flow order, the engine
//! overlaps them where dependencies and resources allow. That shared
//! kernel is what makes the engine-dominates-sequential invariant
//! (`tests/sim_differential.rs`) provable rather than approximate.

use cmswitch_arch::DualModeArch;
use cmswitch_metaop::{ComputeStmt, MemLoc, MemStmt, Stmt, SwitchKind};

/// Vector function-unit throughput (elementwise FLOPs/cycle), kept equal
/// to the compiler's [`cmswitch_core::cost::FU_FLOPS_PER_CYCLE`].
pub const FU_FLOPS_PER_CYCLE: f64 = 64.0;

/// Cycles one `CM.switch` statement takes: the reconfiguration driver
/// processes its `count` arrays serially at the per-array latency of
/// Eq. 1 (`L_{m→c}` / `L_{c→m}`).
pub fn switch_duration(kind: SwitchKind, count: usize, arch: &DualModeArch) -> f64 {
    let per = match kind {
        SwitchKind::ToCompute => arch.switch_m2c_cycles(),
        SwitchKind::ToMemory => arch.switch_c2m_cycles(),
    };
    per as f64 * count as f64
}

/// Per-array cycles of a `CM.switch` statement (the stride at which the
/// serial driver releases consecutive arrays).
pub fn switch_stride(kind: SwitchKind, arch: &DualModeArch) -> f64 {
    match kind {
        SwitchKind::ToCompute => arch.switch_m2c_cycles() as f64,
        SwitchKind::ToMemory => arch.switch_c2m_cycles() as f64,
    }
}

/// Cycles a bulk memory statement takes at the bandwidth of its
/// location: the main-memory link, the original on-chip buffer, or the
/// aggregate bandwidth of the addressed memory-mode arrays.
pub fn mem_duration(m: &MemStmt, arch: &DualModeArch) -> f64 {
    let bw = match &m.loc {
        MemLoc::Main => arch.extern_bw() as f64,
        MemLoc::Buffer => arch.d_main(),
        MemLoc::CimArrays(a) => (a.len().max(1) as f64) * arch.d_cim(),
    };
    m.bytes as f64 / bw
}

/// Cycles a weight load over `count` arrays takes — Eq. 2 semantics:
/// per-array cell-write latency, serialized across one operator's
/// arrays (different operators' loads overlap).
pub fn load_duration(count: usize, arch: &DualModeArch) -> f64 {
    count as f64 * arch.lat_write_array() as f64
}

/// Cycles a vector function-unit statement takes.
pub fn vector_duration(flops: u64) -> f64 {
    flops as f64 / FU_FLOPS_PER_CYCLE
}

/// Execution-lane time of one compute statement: operand write +
/// streamed execution (Eq. 10) + fused vector work. Weight loads are a
/// separate phase (Eq. 2), accounted by [`segment_phases`]. Vector
/// statements named `<op>.aux` in the same body fuse into the
/// operator's lane.
pub fn lane_duration(c: &ComputeStmt, body: &[Stmt], arch: &DualModeArch) -> f64 {
    let vec_cycles: f64 = body
        .iter()
        .filter_map(|s| match s {
            Stmt::Vector(v) if v.op.strip_suffix(".aux") == Some(&c.op) => {
                Some(v.flops as f64 / FU_FLOPS_PER_CYCLE)
            }
            _ => None,
        })
        .sum();

    let work = (c.units * c.m * c.k * c.n) as f64;
    let compute_rate = c.compute_arrays.len() as f64 * arch.op_cim();
    let mem_arrays = (c.mem_in_arrays.len() + c.mem_out_arrays.len()) as f64;
    let ai = if c.in_bytes == 0 {
        f64::INFINITY
    } else {
        work / c.in_bytes as f64
    };
    let mem_rate = (mem_arrays * arch.d_cim() + arch.d_main()) * ai;
    let rate = compute_rate.min(mem_rate);
    let exec = if rate > 0.0 { work / rate } else { f64::INFINITY };
    let operand_write = if c.weight_static {
        0.0
    } else {
        let bytes = (c.units * c.k * c.n) as f64;
        bytes / (arch.d_main() + mem_arrays * arch.d_cim())
    };
    operand_write + exec + vec_cycles
}

/// The two phases of one segment body (Fig. 10 step 3 then execution).
///
/// First every operator's weights are written into its compute arrays —
/// per-op loads overlap, serialized within one op, so the phase takes
/// `max_o(Com_o · Latency_write)` exactly as Eq. 2 — then the pipelined
/// execution phase runs, taking the slowest lane (Eq. 9). Body-level
/// memory statements without a lane execute alongside the lanes as one
/// serialized pseudo-lane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SegmentPhases {
    /// Weight-load barrier: `max` over per-op load durations.
    pub load_phase: f64,
    /// Slowest compute lane.
    pub exec_phase: f64,
    /// Summed cycles of body memory statements without a lane.
    pub loose_cycles: f64,
    /// Number of compute operators in the body.
    pub n_ops: usize,
}

impl SegmentPhases {
    /// Cycles the post-barrier part of the segment takes: the slowest of
    /// the compute lanes and the loose-memory pseudo-lane.
    pub fn exec_and_loose(&self) -> f64 {
        self.exec_phase.max(self.loose_cycles)
    }

    /// Total segment cycles when nothing overlaps from outside:
    /// `load_phase + max(exec, loose)`.
    pub fn total(&self) -> f64 {
        self.load_phase + self.exec_and_loose()
    }
}

/// Computes the phase timings of one segment body.
pub fn segment_phases(body: &[Stmt], arch: &DualModeArch) -> SegmentPhases {
    let mut phases = SegmentPhases::default();
    for stmt in body {
        match stmt {
            Stmt::Compute(c) => {
                phases.n_ops += 1;
                phases.exec_phase = phases.exec_phase.max(lane_duration(c, body, arch));
            }
            Stmt::LoadWeights(w) => {
                phases.load_phase = phases.load_phase.max(load_duration(w.arrays.len(), arch));
            }
            Stmt::Vector(_) => {} // folded into lanes via the `.aux` suffix
            Stmt::Mem(m) => phases.loose_cycles += mem_duration(m, arch),
            Stmt::Switch { .. } | Stmt::Parallel(_) => {}
        }
    }
    phases
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmswitch_arch::{presets, ArrayId};
    use cmswitch_metaop::{MemDirection, WeightLoadStmt};

    fn compute(op: &str, arrays: Vec<ArrayId>, m: usize) -> Stmt {
        Stmt::Compute(ComputeStmt {
            op: op.into(),
            compute_arrays: arrays,
            mem_in_arrays: vec![],
            mem_out_arrays: vec![],
            m,
            k: 64,
            n: 64,
            units: 1,
            in_bytes: (m * 64) as u64,
            out_bytes: (m * 64) as u64,
            weight_static: true,
        })
    }

    #[test]
    fn switch_duration_serializes_arrays() {
        let arch = presets::tiny();
        let one = switch_duration(SwitchKind::ToCompute, 1, &arch);
        let four = switch_duration(SwitchKind::ToCompute, 4, &arch);
        assert_eq!(four, 4.0 * one);
        assert_eq!(switch_stride(SwitchKind::ToCompute, &arch), one);
    }

    #[test]
    fn mem_duration_uses_location_bandwidth() {
        let arch = presets::tiny();
        let mk = |loc| MemStmt {
            loc,
            direction: MemDirection::Write,
            bytes: 1024,
            label: "t".into(),
        };
        let main = mem_duration(&mk(MemLoc::Main), &arch);
        let buffer = mem_duration(&mk(MemLoc::Buffer), &arch);
        let cim = mem_duration(&mk(MemLoc::CimArrays(vec![ArrayId(0), ArrayId(1)])), &arch);
        assert_eq!(main, 1024.0 / arch.extern_bw() as f64);
        assert_eq!(buffer, 1024.0 / arch.d_main());
        assert_eq!(cim, 1024.0 / (2.0 * arch.d_cim()));
    }

    #[test]
    fn segment_phases_take_max_load_and_max_lane() {
        let arch = presets::tiny();
        let body = vec![
            Stmt::LoadWeights(WeightLoadStmt {
                op: "a".into(),
                arrays: vec![ArrayId(0)],
                bytes: 64,
            }),
            Stmt::LoadWeights(WeightLoadStmt {
                op: "b".into(),
                arrays: vec![ArrayId(1), ArrayId(2)],
                bytes: 128,
            }),
            compute("a", vec![ArrayId(0)], 8),
            compute("b", vec![ArrayId(1), ArrayId(2)], 512),
        ];
        let p = segment_phases(&body, &arch);
        assert_eq!(p.n_ops, 2);
        assert_eq!(p.load_phase, load_duration(2, &arch));
        assert_eq!(
            p.exec_phase,
            lane_duration(
                match &body[3] {
                    Stmt::Compute(c) => c,
                    _ => unreachable!(),
                },
                &body,
                &arch
            )
        );
        assert_eq!(p.total(), p.load_phase + p.exec_phase.max(p.loose_cycles));
    }
}
