//! Pareto-frontier extraction over swept design points.
//!
//! The sweep reports three minimize-me objectives per point — end-to-end
//! latency (cycles), energy (pJ) and silicon area (mm²) — and no single
//! scalarization of the three is honest. The frontier keeps exactly the
//! points no other point beats on all axes at once, which is the set an
//! architect actually chooses from.

use crate::runner::SweepRecord;

/// Whether `a` dominates `b` under minimization: `a` is no worse on
/// every objective and strictly better on at least one. Ties (and exact
/// duplicates) dominate in neither direction, so both survive a
/// frontier pass.
pub fn dominates(a: &[f64; 3], b: &[f64; 3]) -> bool {
    let mut strictly = false;
    for i in 0..3 {
        if a[i] > b[i] {
            return false;
        }
        if a[i] < b[i] {
            strictly = true;
        }
    }
    strictly
}

/// Indices of the non-dominated points, ascending. The result is
/// *minimal* (no returned point dominates another returned point) and
/// *complete* (every non-dominated input index is returned) — both
/// properties are property-tested in `tests/dse_sweep.rs`.
pub fn frontier_indices(points: &[[f64; 3]]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| !points.iter().any(|other| dominates(other, &points[i])))
        .collect()
}

/// The Pareto frontier of a sweep over (latency, energy, area).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParetoFrontier {
    /// Indices into the record slice the frontier was extracted from,
    /// ascending.
    pub indices: Vec<usize>,
}

impl ParetoFrontier {
    /// Extracts the frontier of `records` over
    /// (`latency_cycles`, `energy_pj`, `cost.area_mm2`).
    pub fn extract(records: &[SweepRecord]) -> Self {
        let objectives: Vec<[f64; 3]> = records.iter().map(SweepRecord::objectives).collect();
        ParetoFrontier {
            indices: frontier_indices(&objectives),
        }
    }

    /// Number of frontier points.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the frontier is empty (true only for an empty sweep).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Whether record `idx` sits on the frontier.
    pub fn contains(&self, idx: usize) -> bool {
        self.indices.binary_search(&idx).is_ok()
    }

    /// The frontier's records, sorted fastest-first (latency ascending,
    /// energy then area as tie-breaks) for display.
    pub fn records<'a>(&self, records: &'a [SweepRecord]) -> Vec<&'a SweepRecord> {
        let mut out: Vec<&SweepRecord> = self.indices.iter().map(|&i| &records[i]).collect();
        out.sort_by(|a, b| {
            a.objectives()
                .partial_cmp(&b.objectives())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }

    /// Renders the frontier as an aligned text table, fastest point
    /// first.
    pub fn table(&self, records: &[SweepRecord]) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<28} {:>12} {:>14} {:>9} {:>9} {:>9}\n",
            "point", "cycles", "energy_uJ", "area_mm2", "peak_mW", "avg_mW"
        ));
        for r in self.records(records) {
            s.push_str(&format!(
                "{:<28} {:>12.0} {:>14.2} {:>9.3} {:>9.1} {:>9.1}\n",
                r.spec.label(),
                r.latency_cycles,
                r.energy_pj / 1e6,
                r.cost.area_mm2,
                r.cost.peak_power_mw,
                r.avg_power_mw,
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_requires_strict_improvement() {
        let a = [1.0, 2.0, 3.0];
        assert!(!dominates(&a, &a), "a point never dominates itself");
        assert!(dominates(&[1.0, 2.0, 2.9], &a));
        assert!(dominates(&[0.0, 0.0, 0.0], &a));
        assert!(!dominates(&[0.5, 2.1, 3.0], &a), "worse on one axis");
        assert!(!dominates(&a, &[1.0, 2.0, 2.9]));
    }

    #[test]
    fn frontier_prunes_dominated_keeps_incomparable_and_ties() {
        let pts = [
            [1.0, 9.0, 5.0], // frontier: best latency
            [9.0, 1.0, 5.0], // frontier: best energy
            [5.0, 5.0, 1.0], // frontier: best area
            [9.0, 9.0, 9.0], // dominated by all three
            [1.0, 9.0, 5.0], // duplicate of #0: both survive
        ];
        assert_eq!(frontier_indices(&pts), vec![0, 1, 2, 4]);
    }

    #[test]
    fn single_point_is_its_own_frontier() {
        assert_eq!(frontier_indices(&[[3.0, 3.0, 3.0]]), vec![0]);
        assert!(frontier_indices(&[]).is_empty());
    }
}
