//! The sweep harness: drive every grid point through the real compiler
//! and simulator.
//!
//! A [`SweepRunner`] holds a workload (named graphs), compiler options
//! and an [`AreaPowerModel`], and evaluates each [`SweepPoint`] by
//! building a [`Session`] *for that chip* on top of a **shared**
//! [`AllocationCache`] (and, optionally, a shared [`ArtifactStore`]).
//! Warmth is layered like the rest of the stack:
//!
//! * **L0 — record memo.** Evaluation is deterministic (bit-identical
//!   records across worker counts, proven in `tests/dse_sweep.rs`), so
//!   the runner memoizes the finished [`SweepRecord`] per architecture
//!   fingerprint. Re-sweeping a point the *same runner* already
//!   evaluated returns the memoized record without recompiling,
//!   re-verifying or re-simulating — the steady state of a long-lived
//!   explorer, and the warm-re-sweep speedup `BENCH_dse.json` records.
//! * **L1 — allocation cache.** Shared across points and runners; keyed
//!   on the architecture fingerprint, so distinct points never
//!   cross-contaminate while *new* points with repeated segments skip
//!   their MIP solves.
//! * **L2 — artifact store.** Whole compiled programs served from disk,
//!   across runners and processes.
//!
//! Every compiled program is checked with the static [`Verifier`]
//! before it is simulated; a `Deny` finding fails the point (it never
//! silently enters the frontier). Points are evaluated sequentially in
//! grid order — parallelism lives *inside* each point (the session's
//! batch worker pool and solve pool) — so records come out in a
//! deterministic order regardless of worker counts.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cmswitch_core::{
    AllocationCache, ArtifactStore, CompileError, CompileRequest, CompilerOptions, Session,
    Verifier,
};
use cmswitch_graph::Graph;
use cmswitch_metaop::MetaOpError;
use cmswitch_sim::{EnergyReport, EventEngine, ModeOccupancy};

use crate::cost::{AreaPowerModel, ChipCost};
use crate::pareto::ParetoFrontier;
use crate::space::{PointSpec, RejectedPoint, SweepGrid, SweepPoint};

/// Why a valid grid point failed evaluation.
#[derive(Debug)]
pub enum SweepFailure {
    /// A model failed to compile on this chip.
    Compile(CompileError),
    /// The static verifier denied the compiled program.
    VerifyDenied {
        /// Number of `Deny` findings.
        deny: usize,
    },
    /// The event engine rejected the compiled flow.
    Simulate(MetaOpError),
}

impl fmt::Display for SweepFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepFailure::Compile(e) => write!(f, "compile failed: {e}"),
            SweepFailure::VerifyDenied { deny } => {
                write!(f, "verifier denied the program ({deny} findings)")
            }
            SweepFailure::Simulate(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

/// A grid point that compiled-or-simulated unsuccessfully, with the
/// model that sank it.
#[derive(Debug)]
pub struct FailedPoint {
    /// Grid coordinates of the failed point.
    pub spec: PointSpec,
    /// The model whose compilation/simulation failed.
    pub model: String,
    /// What went wrong.
    pub failure: SweepFailure,
}

/// Per-model latency/energy at one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelResult {
    /// Model name (the batch label).
    pub name: String,
    /// Event-engine makespan, cycles.
    pub cycles: f64,
    /// Flow energy, pJ.
    pub energy_pj: f64,
}

/// Everything the sweep measured at one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// Grid coordinates.
    pub spec: PointSpec,
    /// The instantiated architecture's name.
    pub arch_name: String,
    /// The architecture fingerprint (the cache/store key component).
    pub fingerprint: u64,
    /// Workload latency: summed event-engine makespans over all models,
    /// cycles.
    pub latency_cycles: f64,
    /// Workload energy: summed flow energy over all models, pJ.
    pub energy_pj: f64,
    /// Static chip cost (area, leakage, peak power).
    pub cost: ChipCost,
    /// Average power over the workload (mode-weighted leakage plus
    /// dynamic), mW.
    pub avg_power_mw: f64,
    /// Mode occupancy of the workload (cycle-weighted over models).
    pub occupancy: ModeOccupancy,
    /// Verifier `Warn` findings across all models (`Deny` fails the
    /// point instead).
    pub verify_warnings: usize,
    /// Allocation solver invocations this point cost (MIP + fast).
    pub solves: u64,
    /// Allocation-cache hits while compiling this point.
    pub cache_hits: u64,
    /// Artifact-store hits while compiling this point.
    pub store_hits: u64,
    /// Wall-clock spent evaluating this point. Counters and wall are
    /// from the evaluation that *produced* the record; a memo-served
    /// re-sweep returns them unchanged.
    pub wall: Duration,
    /// Per-model breakdown, in workload order.
    pub per_model: Vec<ModelResult>,
}

impl SweepRecord {
    /// The three minimized objectives: (latency cycles, energy pJ,
    /// area mm²).
    pub fn objectives(&self) -> [f64; 3] {
        [self.latency_cycles, self.energy_pj, self.cost.area_mm2]
    }
}

/// Everything a sweep produced: measured records in grid order, carried
/// rejections, evaluation failures and aggregate counters.
#[derive(Debug, Default)]
pub struct SweepReport {
    /// Measured points, in grid order.
    pub records: Vec<SweepRecord>,
    /// Grid coordinates the space rejected before evaluation.
    pub rejected: Vec<RejectedPoint>,
    /// Valid points whose evaluation failed.
    pub failed: Vec<FailedPoint>,
    /// Wall-clock of the whole sweep.
    pub wall: Duration,
    /// Total allocation solver invocations across points.
    pub solves: u64,
    /// Total allocation-cache hits across points.
    pub cache_hits: u64,
    /// Total allocation-cache misses across points.
    pub cache_misses: u64,
    /// Total artifact-store hits across points.
    pub store_hits: u64,
    /// Total artifact-store misses across points.
    pub store_misses: u64,
    /// Points served from the runner's record memo (L0) without
    /// re-evaluation. Memo-served points contribute nothing to the
    /// other counters of *this* report.
    pub point_hits: u64,
}

impl SweepReport {
    /// The Pareto frontier of the measured records over
    /// (latency, energy, area).
    pub fn frontier(&self) -> ParetoFrontier {
        ParetoFrontier::extract(&self.records)
    }

    /// One-line aggregate summary.
    pub fn summary(&self) -> String {
        format!(
            "{} points measured ({} rejected, {} failed) in {:.2?} — {} solves, \
             {} memo hits, {} cache hits, {} store hits, frontier {}",
            self.records.len(),
            self.rejected.len(),
            self.failed.len(),
            self.wall,
            self.solves,
            self.point_hits,
            self.cache_hits,
            self.store_hits,
            self.frontier().len(),
        )
    }

    /// All measured records as an aligned text table, grid order, with
    /// a `*` marking frontier membership.
    pub fn table(&self) -> String {
        let frontier = self.frontier();
        let mut s = String::new();
        s.push_str(&format!(
            "{:<2} {:<28} {:>12} {:>14} {:>9} {:>9} {:>9}\n",
            "", "point", "cycles", "energy_uJ", "area_mm2", "avg_mW", "solves"
        ));
        for (i, r) in self.records.iter().enumerate() {
            s.push_str(&format!(
                "{:<2} {:<28} {:>12.0} {:>14.2} {:>9.3} {:>9.1} {:>9}\n",
                if frontier.contains(i) { "*" } else { "" },
                r.spec.label(),
                r.latency_cycles,
                r.energy_pj / 1e6,
                r.cost.area_mm2,
                r.avg_power_mw,
                r.solves,
            ));
        }
        s
    }

    /// All measured records as CSV (header + one row per point, grid
    /// order) with a `pareto` membership column.
    pub fn csv(&self) -> String {
        let frontier = self.frontier();
        let mut s = String::from(
            "point,rows,cols,n_arrays,switch_cycles,buffer_bytes,bus_width,\
             latency_cycles,energy_pj,area_mm2,leakage_mw,peak_power_mw,avg_power_mw,\
             solves,cache_hits,store_hits,verify_warnings,pareto\n",
        );
        for (i, r) in self.records.iter().enumerate() {
            s.push_str(&format!(
                "{},{},{},{},{},{},{},{:.0},{:.1},{:.4},{:.3},{:.1},{:.2},{},{},{},{},{}\n",
                r.spec.label(),
                r.spec.rows,
                r.spec.cols,
                r.spec.n_arrays,
                r.spec.switch_cycles,
                r.spec.buffer_bytes,
                r.spec.bus_width,
                r.latency_cycles,
                r.energy_pj,
                r.cost.area_mm2,
                r.cost.leakage_mw,
                r.cost.peak_power_mw,
                r.avg_power_mw,
                r.solves,
                r.cache_hits,
                r.store_hits,
                r.verify_warnings,
                frontier.contains(i),
            ));
        }
        s
    }
}

/// Evaluates design points against a fixed workload through the real
/// `Session` batch layer and the event-driven simulator.
///
/// ```no_run
/// use cmswitch_arch::presets;
/// use cmswitch_dse::{SweepRunner, SweepSpace};
///
/// let models = vec![(
///     "mlp".to_string(),
///     cmswitch_models::mlp::mlp(4, &[256, 512, 128]).unwrap(),
/// )];
/// let grid = SweepSpace::around(presets::tiny())
///     .with_array_counts([4, 8, 16])
///     .instantiate();
/// let report = SweepRunner::new(models).run(&grid);
/// println!("{}", report.frontier().table(&report.records));
/// ```
#[derive(Debug)]
pub struct SweepRunner {
    models: Vec<(String, Graph)>,
    options: CompilerOptions,
    workers: usize,
    cache: Arc<AllocationCache>,
    store: Option<Arc<ArtifactStore>>,
    cost_model: AreaPowerModel,
    /// L0: finished records memoized per architecture fingerprint.
    /// Sound because evaluation is deterministic for a fixed
    /// (workload, options, cost model) — the setters that change those
    /// clear it.
    memo: Mutex<HashMap<u64, SweepRecord>>,
}

impl SweepRunner {
    /// A runner evaluating `models` (name, graph) with default compiler
    /// options, a fresh shared allocation cache, no artifact store and
    /// the default [`AreaPowerModel`].
    pub fn new(models: impl IntoIterator<Item = (String, Graph)>) -> Self {
        SweepRunner {
            models: models.into_iter().collect(),
            options: CompilerOptions::default(),
            workers: 0,
            cache: AllocationCache::new(),
            store: None,
            cost_model: AreaPowerModel::default(),
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// Sets the compiler options used at every point. Clears the record
    /// memo: options can change what is measured.
    #[must_use]
    pub fn with_options(mut self, options: CompilerOptions) -> Self {
        self.options = options;
        self.memo.get_mut().unwrap().clear();
        self
    }

    /// Sets the per-point batch worker count (`0` = auto).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Shares an existing allocation cache (L1) — hand the same cache to
    /// a second runner (or keep the runner alive across sweeps) and a
    /// re-sweep of the same grid solves nothing.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<AllocationCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Attaches a persistent artifact store (L2): repeated sweeps are
    /// served from disk even across processes.
    #[must_use]
    pub fn with_store(mut self, store: Arc<ArtifactStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Sets the area/power model pricing every point (its
    /// [`cmswitch_sim::EnergyModel`] is also what the simulator
    /// charges, keeping energy and power consistent). Clears the record
    /// memo: the model changes every priced quantity.
    #[must_use]
    pub fn with_cost_model(mut self, model: AreaPowerModel) -> Self {
        self.cost_model = model;
        self.memo.get_mut().unwrap().clear();
        self
    }

    /// The shared allocation cache.
    pub fn cache(&self) -> &Arc<AllocationCache> {
        &self.cache
    }

    /// The area/power model in use.
    pub fn cost_model(&self) -> &AreaPowerModel {
        &self.cost_model
    }

    /// The workload, in evaluation order.
    pub fn models(&self) -> &[(String, Graph)] {
        &self.models
    }

    /// Evaluates every valid point of `grid` (carrying its rejections
    /// into the report). Records come out in grid order; the order and
    /// every measured quantity except `wall` are deterministic across
    /// worker counts.
    pub fn run(&self, grid: &SweepGrid) -> SweepReport {
        let started = Instant::now();
        let mut report = SweepReport {
            rejected: grid.rejected.clone(),
            ..SweepReport::default()
        };
        for point in &grid.points {
            let fingerprint = point.arch.fingerprint();
            if let Some(record) = self.memo.lock().unwrap().get(&fingerprint) {
                report.point_hits += 1;
                report.records.push(record.clone());
                continue;
            }
            match self.run_point(point) {
                Ok((record, counters)) => {
                    report.solves += record.solves;
                    report.cache_hits += counters.cache_hits;
                    report.cache_misses += counters.cache_misses;
                    report.store_hits += counters.store_hits;
                    report.store_misses += counters.store_misses;
                    self.memo
                        .lock()
                        .unwrap()
                        .insert(fingerprint, record.clone());
                    report.records.push(record);
                }
                Err(failed) => report.failed.push(failed),
            }
        }
        report.wall = started.elapsed();
        report
    }

    /// Evaluates a bare list of architectures (no grid), deriving each
    /// point's spec from the chip itself.
    pub fn run_archs(&self, archs: &[cmswitch_arch::DualModeArch]) -> SweepReport {
        let grid = SweepGrid {
            points: archs
                .iter()
                .map(|arch| SweepPoint {
                    spec: PointSpec::of(arch),
                    arch: arch.clone(),
                })
                .collect(),
            rejected: Vec::new(),
        };
        self.run(&grid)
    }

    fn run_point(&self, point: &SweepPoint) -> Result<(SweepRecord, Counters), FailedPoint> {
        let started = Instant::now();
        let mut builder = Session::builder(point.arch.clone())
            .options(self.options.clone())
            .workers(self.workers)
            .cache(Arc::clone(&self.cache));
        if let Some(store) = &self.store {
            builder = builder.store(Arc::clone(store));
        }
        let session = builder.build();

        let requests: Vec<CompileRequest> = self
            .models
            .iter()
            .map(|(name, graph)| CompileRequest::new(graph.clone()).with_label(name.clone()))
            .collect();
        let batch = session.compile_batch(&requests);

        let fail = |model: &str, failure: SweepFailure| FailedPoint {
            spec: point.spec,
            model: model.to_string(),
            failure,
        };

        let verifier = Verifier::new();
        let engine = EventEngine::with_energy_model(self.cost_model.energy.clone());
        let n_arrays = point.arch.n_arrays();

        let mut latency = 0.0_f64;
        let mut energy = EnergyReport::default();
        let mut warnings = 0usize;
        let mut occ_sum = ModeOccupancy::default();
        let mut per_model = Vec::with_capacity(batch.outcomes.len());
        for outcome in batch.outcomes {
            let program = match outcome.result {
                Ok(p) => p,
                Err(e) => return Err(fail(&outcome.name, SweepFailure::Compile(e))),
            };
            let verdict = verifier.run(&program, &point.arch);
            if verdict.deny_count() > 0 {
                return Err(fail(
                    &outcome.name,
                    SweepFailure::VerifyDenied {
                        deny: verdict.deny_count(),
                    },
                ));
            }
            warnings += verdict.warn_count();
            let sim = match engine.simulate_program(&program, &point.arch) {
                Ok(r) => r,
                Err(e) => return Err(fail(&outcome.name, SweepFailure::Simulate(e))),
            };
            let occ = sim.mode_occupancy(n_arrays);
            // Cycle-weighted occupancy: long models shape the workload's
            // average power more than short ones.
            occ_sum.compute += occ.compute * sim.total_cycles;
            occ_sum.memory += occ.memory * sim.total_cycles;
            occ_sum.switching += occ.switching * sim.total_cycles;
            occ_sum.idle += occ.idle * sim.total_cycles;
            latency += sim.total_cycles;
            energy.absorb(&sim.energy);
            per_model.push(ModelResult {
                name: outcome.name,
                cycles: sim.total_cycles,
                energy_pj: sim.energy.total_pj(),
            });
        }

        let occupancy = if latency > 0.0 {
            ModeOccupancy {
                compute: occ_sum.compute / latency,
                memory: occ_sum.memory / latency,
                switching: occ_sum.switching / latency,
                idle: occ_sum.idle / latency,
            }
        } else {
            ModeOccupancy {
                idle: 1.0,
                ..ModeOccupancy::default()
            }
        };

        let cost = self.cost_model.price(&point.arch);
        let avg_power_mw =
            self.cost_model
                .average_power_mw(&point.arch, latency, &energy, occupancy);

        Ok((
            SweepRecord {
                spec: point.spec,
                arch_name: point.arch.name().to_string(),
                fingerprint: point.arch.fingerprint(),
                latency_cycles: latency,
                energy_pj: energy.total_pj(),
                cost,
                avg_power_mw,
                occupancy,
                verify_warnings: warnings,
                solves: batch.stats.solver_invocations(),
                cache_hits: batch.stats.cache_hits,
                store_hits: batch.stats.store_hits,
                wall: started.elapsed(),
                per_model,
            },
            Counters {
                cache_hits: batch.stats.cache_hits,
                cache_misses: batch.stats.cache_misses,
                store_hits: batch.stats.store_hits,
                store_misses: batch.stats.store_misses,
            },
        ))
    }
}

struct Counters {
    cache_hits: u64,
    cache_misses: u64,
    store_hits: u64,
    store_misses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SweepSpace;
    use cmswitch_arch::presets;

    fn tiny_workload() -> Vec<(String, Graph)> {
        vec![
            (
                "mlp-a".to_string(),
                cmswitch_models::mlp::mlp(2, &[64, 96, 32]).unwrap(),
            ),
            (
                "mlp-b".to_string(),
                cmswitch_models::mlp::mlp(2, &[96, 64, 48]).unwrap(),
            ),
        ]
    }

    #[test]
    fn sweep_measures_every_valid_point_in_grid_order() {
        let grid = SweepSpace::around(presets::tiny())
            .with_array_counts([4, 8])
            .with_bus_widths([8, 16])
            .instantiate();
        let runner = SweepRunner::new(tiny_workload());
        let report = runner.run(&grid);
        assert_eq!(report.records.len(), 4);
        assert!(report.failed.is_empty(), "{:?}", report.failed);
        for (record, point) in report.records.iter().zip(&grid.points) {
            assert_eq!(record.spec, point.spec);
            assert_eq!(record.fingerprint, point.arch.fingerprint());
            assert!(record.latency_cycles > 0.0);
            assert!(record.energy_pj > 0.0);
            assert!(record.cost.area_mm2 > 0.0);
            assert!(record.avg_power_mw > 0.0);
            // DRAM energy is billed over its transfer window, so the
            // average can never exceed the saturated-rate peak rating.
            assert!(
                record.avg_power_mw <= record.cost.peak_power_mw,
                "avg {} mW exceeds peak {} mW",
                record.avg_power_mw,
                record.cost.peak_power_mw
            );
            assert!(record.avg_power_mw > record.cost.leakage_mw * 0.1);
            assert_eq!(record.per_model.len(), 2);
            let occ = record.occupancy;
            let total = occ.compute + occ.memory + occ.switching + occ.idle;
            assert!((total - 1.0).abs() < 1e-6, "occupancy sums to {total}");
        }
        assert!(!report.frontier().is_empty());
        assert!(report.table().contains("cycles"));
        assert!(report.csv().lines().count() == 5);
    }

    #[test]
    fn memo_makes_a_resweep_solve_and_simulation_free() {
        let grid = SweepSpace::around(presets::tiny())
            .with_array_counts([4, 8])
            .instantiate();
        let runner = SweepRunner::new(tiny_workload());
        let cold = runner.run(&grid);
        assert!(cold.solves > 0, "cold sweep must pay real solves");
        assert_eq!(cold.point_hits, 0);
        let warm = runner.run(&grid);
        assert_eq!(warm.solves, 0, "warm re-sweep must not touch the solver");
        assert_eq!(
            warm.point_hits,
            grid.points.len() as u64,
            "every point is served from the L0 record memo"
        );
        // The records are identical either way.
        for (c, w) in cold.records.iter().zip(&warm.records) {
            assert_eq!(c, w);
        }
    }

    #[test]
    fn changing_the_cost_model_invalidates_the_memo() {
        let grid = SweepSpace::around(presets::tiny()).instantiate();
        let runner = SweepRunner::new(tiny_workload());
        let before = runner.run(&grid);
        let mut pricier = AreaPowerModel::default();
        pricier.cell_um2 *= 2.0;
        let runner = runner.with_cost_model(pricier);
        let after = runner.run(&grid);
        assert_eq!(after.point_hits, 0, "stale records must not be served");
        assert!(after.records[0].cost.area_mm2 > before.records[0].cost.area_mm2);
    }
}
