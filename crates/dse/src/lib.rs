//! Architecture design-space exploration for dual-mode CIM chips.
//!
//! The paper evaluates CMSwitch on *one* fixed DynaPlasia-style chip
//! (§5.1); this crate asks the question the compiler makes tractable:
//! **which chip?** Because every [`cmswitch_core::Session`] compile is
//! cached, verified and fast, sweeping hundreds of architecture
//! variants through the *real* compiler and the *real* cycle-level
//! simulator is cheap enough to run in CI — no proxy performance
//! models.
//!
//! The crate has four pieces, meeting in [`SweepRunner`]:
//!
//! * [`cost`] — an [`AreaPowerModel`] pricing a
//!   [`cmswitch_arch::DualModeArch`] with CACTI-style analytic area and
//!   leakage terms ([`ChipCost`]: mm², static mW, peak mW), plus a
//!   mode-occupancy-weighted average-power estimate.
//! * [`space`] — a [`SweepSpace`] cartesian grid over array geometry,
//!   array count, switch latency, buffer capacity and bus width; every
//!   coordinate becomes a validated architecture or a typed
//!   [`RejectedPoint`].
//! * [`runner`] — the [`SweepRunner`] drives each point through the
//!   session batch layer (shared allocation cache, optional persistent
//!   artifact store — so re-sweeps are warm), statically verifies every
//!   program, simulates it on the event engine and emits one
//!   [`SweepRecord`] per point.
//! * [`pareto`] — the [`ParetoFrontier`] over (latency, energy, area),
//!   minimal and complete by construction, with text/CSV reporting.
//!
//! # Example
//!
//! ```
//! use cmswitch_arch::presets;
//! use cmswitch_dse::{SweepRunner, SweepSpace};
//!
//! let grid = SweepSpace::around(presets::tiny())
//!     .with_array_counts([4, 8])
//!     .with_switch_latencies([1, 8])
//!     .instantiate();
//! let models = vec![(
//!     "mlp".to_string(),
//!     cmswitch_models::mlp::mlp(2, &[64, 96, 32]).unwrap(),
//! )];
//! let report = SweepRunner::new(models).run(&grid);
//! assert_eq!(report.records.len(), 4);
//! let frontier = report.frontier();
//! assert!(!frontier.is_empty());
//! println!("{}", frontier.table(&report.records));
//! ```

#![warn(missing_docs)]
#![warn(clippy::needless_pass_by_value, clippy::redundant_clone)]

pub mod cost;
pub mod pareto;
pub mod runner;
pub mod space;

pub use cost::{AreaBreakdown, AreaPowerModel, ChipCost};
pub use pareto::{dominates, frontier_indices, ParetoFrontier};
pub use runner::{
    FailedPoint, ModelResult, SweepFailure, SweepRecord, SweepReport, SweepRunner,
};
pub use space::{PointSpec, RejectedPoint, SweepError, SweepGrid, SweepPoint, SweepSpace};
