//! CACTI-style analytic area/power pricing of a [`DualModeArch`] point.
//!
//! The paper fixes one chip and never asks what it costs; a design-space
//! sweep has to. This module prices every structural parameter the DEHA
//! exposes the way CACTI prices an SRAM: per-unit mat/cell costs plus
//! peripheral terms that scale with the geometry knob they serve —
//!
//! * **CIM arrays** — per-cell area, per-row wordline drivers, per-column
//!   sense/accumulate periphery, write-port circuitry that widens with
//!   [`DualModeArch::write_parallelism`], and a fixed decode/control
//!   block per array;
//! * **mode-switch circuitry** — the driver bank that flips an array
//!   between modes, scaling *inversely* with the switch latency (a
//!   1-cycle switch drives every line at once; a 4-cycle switch reuses a
//!   quarter-width bank four times) and with the switch method
//!   ([`SwitchMethod::BitlineDriver`] reconfigures sense amplifiers,
//!   costlier than the global-wordline trick);
//! * **the buffer** — linear mat area plus per-bank overhead at a fixed
//!   bank granularity (capacity scaling) plus port area per byte/cycle of
//!   [`DualModeArch::buffer_bw`] (width scaling);
//! * **interconnect** — on-chip lanes per array scaled by
//!   [`DualModeArch::internal_bw`], and the off-chip link scaled by
//!   [`DualModeArch::extern_bw`];
//! * **the vector unit** — a fixed block.
//!
//! Static power is per-class leakage density × area, with *mode-aware*
//! array densities: a compute-mode array keeps its periphery biased, a
//! memory-mode array only its sense path, an idle array can drowse. That
//! is why [`AreaPowerModel::average_power_mw`] takes the simulator's
//! [`ModeOccupancy`] — the duty cycle decides how much of the worst-case
//! leakage is actually paid. Dynamic energy comes from the same
//! [`EnergyModel`] the simulator charges, so sweep energy and power
//! agree by construction.

use cmswitch_arch::{DualModeArch, SwitchMethod};
use cmswitch_sim::{EnergyModel, EnergyReport, ModeOccupancy};

const UM2_PER_MM2: f64 = 1e6;

/// What a [`DualModeArch`] point costs: silicon area, worst-case static
/// power, and peak (all-engines-saturated) power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipCost {
    /// Total die area, mm².
    pub area_mm2: f64,
    /// Worst-case static power (every array biased for compute), mW.
    pub leakage_mw: f64,
    /// Peak power: worst-case leakage plus every array computing, the
    /// off-chip link, buffer ports and vector unit all saturated, mW.
    pub peak_power_mw: f64,
}

/// Area by component class, mm² (sums to [`ChipCost::area_mm2`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaBreakdown {
    /// Dual-mode arrays: cells, row/column periphery, write ports,
    /// per-array control.
    pub arrays_mm2: f64,
    /// Mode-switch driver banks (all arrays).
    pub switch_mm2: f64,
    /// The original on-chip buffer (mats, banks, ports).
    pub buffer_mm2: f64,
    /// On-chip array lanes plus the off-chip link.
    pub interconnect_mm2: f64,
    /// The vector function unit.
    pub vector_mm2: f64,
}

impl AreaBreakdown {
    /// Total area, mm².
    pub fn total_mm2(&self) -> f64 {
        self.arrays_mm2 + self.switch_mm2 + self.buffer_mm2 + self.interconnect_mm2
            + self.vector_mm2
    }
}

/// Analytic area/power coefficients (defaults are representative of a
/// 28 nm eDRAM dual-mode CIM macro; swap in silicon-calibrated numbers
/// to retarget).
///
/// All per-unit areas are in µm²; leakage densities in mW/mm².
#[derive(Debug, Clone, PartialEq)]
pub struct AreaPowerModel {
    /// Area of one dual-mode cell (storage + compute transistors), µm².
    pub cell_um2: f64,
    /// Per-row periphery (wordline driver), µm².
    pub row_periph_um2: f64,
    /// Per-column periphery (sense amplifier + accumulation), µm².
    pub col_periph_um2: f64,
    /// Per-row, per-concurrent-write-port circuitry, µm² (total write
    /// area = `rows × write_parallelism × this`).
    pub write_port_um2: f64,
    /// Fixed per-array decode/control block, µm².
    pub array_fixed_um2: f64,
    /// Per-row mode-switch driver at a 1-cycle switch, µm²; divided by
    /// the mean switch latency (slower switches reuse narrower banks)
    /// and multiplied by the switch-method factor.
    pub switch_driver_um2: f64,
    /// Area multiplier for [`SwitchMethod::BitlineDriver`] switching
    /// (sense-path reconfiguration beats wordline gating in circuitry).
    pub bitline_method_factor: f64,
    /// Buffer mat area per byte, µm².
    pub buffer_um2_per_byte: f64,
    /// Buffer bank granularity, bytes (per-bank overhead below is paid
    /// once per `ceil(capacity / bank_bytes)`).
    pub buffer_bank_bytes: u64,
    /// Per-bank overhead (decoder, repeaters), µm².
    pub buffer_bank_um2: f64,
    /// Buffer port area per byte/cycle of buffer bandwidth, µm².
    pub buffer_port_um2: f64,
    /// On-chip lane area per array per byte/cycle of internal
    /// bandwidth, µm².
    pub noc_um2_per_byte_cycle: f64,
    /// Off-chip link area per byte/cycle of external bandwidth, µm².
    pub bus_um2_per_byte_cycle: f64,
    /// Vector function unit, µm².
    pub vector_um2: f64,
    /// Peak vector throughput used for peak power, FLOPs/cycle.
    pub vector_flops_per_cycle: f64,
    /// Leakage density of an array biased for compute, mW/mm².
    pub leak_mw_per_mm2_array_compute: f64,
    /// Leakage density of an array in memory mode, mW/mm².
    pub leak_mw_per_mm2_array_memory: f64,
    /// Leakage density of an idle (drowsy) array, mW/mm².
    pub leak_mw_per_mm2_array_idle: f64,
    /// Leakage density of the buffer SRAM, mW/mm².
    pub leak_mw_per_mm2_buffer: f64,
    /// Leakage density of logic (switch banks, interconnect, vector),
    /// mW/mm².
    pub leak_mw_per_mm2_logic: f64,
    /// Clock frequency, GHz (converts pJ/cycle to mW: 1 pJ/cycle at
    /// 1 GHz is exactly 1 mW).
    pub clock_ghz: f64,
    /// Dynamic energy coefficients — keep identical to the simulator's
    /// model so sweep energy and power agree.
    pub energy: EnergyModel,
}

impl Default for AreaPowerModel {
    fn default() -> Self {
        AreaPowerModel {
            cell_um2: 0.30,
            row_periph_um2: 1.2,
            col_periph_um2: 2.5,
            write_port_um2: 0.4,
            array_fixed_um2: 2_000.0,
            switch_driver_um2: 0.9,
            bitline_method_factor: 1.5,
            buffer_um2_per_byte: 0.60,
            buffer_bank_bytes: 16 * 1024,
            buffer_bank_um2: 15_000.0,
            buffer_port_um2: 900.0,
            noc_um2_per_byte_cycle: 120.0,
            bus_um2_per_byte_cycle: 3_500.0,
            vector_um2: 250_000.0,
            vector_flops_per_cycle: 32.0,
            leak_mw_per_mm2_array_compute: 15.0,
            leak_mw_per_mm2_array_memory: 8.0,
            leak_mw_per_mm2_array_idle: 3.0,
            leak_mw_per_mm2_buffer: 20.0,
            leak_mw_per_mm2_logic: 10.0,
            clock_ghz: 1.0,
            energy: EnergyModel::default(),
        }
    }
}

impl AreaPowerModel {
    /// Mean per-array switch latency, floored at one cycle (the driver
    /// bank cannot be wider than full-width).
    fn mean_switch_cycles(arch: &DualModeArch) -> f64 {
        ((arch.switch_m2c_cycles() + arch.switch_c2m_cycles()) as f64 / 2.0).max(1.0)
    }

    /// Area of the mode-switch driver bank of one array, µm².
    fn switch_area_per_array_um2(&self, arch: &DualModeArch) -> f64 {
        let method = match arch.switch_method() {
            SwitchMethod::GlobalWordline => 1.0,
            SwitchMethod::BitlineDriver => self.bitline_method_factor,
        };
        arch.array_rows() as f64 * self.switch_driver_um2 * method
            / Self::mean_switch_cycles(arch)
    }

    /// Per-component area of `arch`, mm².
    pub fn area_breakdown(&self, arch: &DualModeArch) -> AreaBreakdown {
        let rows = arch.array_rows() as f64;
        let cols = arch.array_cols() as f64;
        let n = arch.n_arrays() as f64;
        let array_um2 = rows * cols * self.cell_um2
            + rows * self.row_periph_um2
            + cols * self.col_periph_um2
            + rows * arch.write_parallelism() as f64 * self.write_port_um2
            + self.array_fixed_um2;
        let banks = arch.buffer_bytes().div_ceil(self.buffer_bank_bytes.max(1)) as f64;
        let buffer_um2 = arch.buffer_bytes() as f64 * self.buffer_um2_per_byte
            + banks * self.buffer_bank_um2
            + arch.buffer_bw() as f64 * self.buffer_port_um2;
        let interconnect_um2 = n * arch.internal_bw() as f64 * self.noc_um2_per_byte_cycle
            + arch.extern_bw() as f64 * self.bus_um2_per_byte_cycle;
        AreaBreakdown {
            arrays_mm2: n * array_um2 / UM2_PER_MM2,
            switch_mm2: n * self.switch_area_per_array_um2(arch) / UM2_PER_MM2,
            buffer_mm2: buffer_um2 / UM2_PER_MM2,
            interconnect_mm2: interconnect_um2 / UM2_PER_MM2,
            vector_mm2: self.vector_um2 / UM2_PER_MM2,
        }
    }

    /// Worst-case static power of `arch` (every array biased for
    /// compute), mW.
    fn worst_case_leakage_mw(&self, areas: &AreaBreakdown) -> f64 {
        areas.arrays_mm2 * self.leak_mw_per_mm2_array_compute
            + areas.buffer_mm2 * self.leak_mw_per_mm2_buffer
            + (areas.switch_mm2 + areas.interconnect_mm2 + areas.vector_mm2)
                * self.leak_mw_per_mm2_logic
    }

    /// Prices `arch`: area, worst-case leakage, and peak power.
    pub fn price(&self, arch: &DualModeArch) -> ChipCost {
        let areas = self.area_breakdown(arch);
        let leakage_mw = self.worst_case_leakage_mw(&areas);
        // Peak dynamic event rate, pJ/cycle. An array is in exactly one
        // mode at a time, so its peak is the *worst* of its modes:
        // computing at the full MAC rate while streaming weight writes,
        // buffering memory-mode traffic at the internal lane width, or
        // burning a switch event. On top of the array pool, the off-chip
        // link, buffer ports and vector unit all saturate at once.
        let write_bytes_per_cycle = arch.array_cols() as f64
            * arch.write_parallelism() as f64
            / arch.write_row_cycles() as f64;
        let compute_pj = arch.op_cim() * self.energy.pj_per_mac
            + write_bytes_per_cycle * self.energy.pj_per_write_byte;
        let memory_pj = arch.internal_bw() as f64 * self.energy.pj_per_onchip_byte;
        let switch_pj = self.energy.pj_per_switch
            / (arch.switch_m2c_cycles().min(arch.switch_c2m_cycles()).max(1) as f64);
        let per_array_pj = compute_pj.max(memory_pj).max(switch_pj);
        let peak_pj_per_cycle = arch.n_arrays() as f64 * per_array_pj
            + arch.extern_bw() as f64 * self.energy.pj_per_dram_byte
            + arch.buffer_bw() as f64 * self.energy.pj_per_onchip_byte
            + self.vector_flops_per_cycle * self.energy.pj_per_vector_flop;
        ChipCost {
            area_mm2: areas.total_mm2(),
            leakage_mw,
            peak_power_mw: leakage_mw + peak_pj_per_cycle * self.clock_ghz,
        }
    }

    /// Average power of a simulated run on `arch`, mW: mode-weighted
    /// static power (the array pool's duty cycle decides which leakage
    /// density each slice of array-time pays) plus the run's dynamic
    /// energy spread over its makespan. Zero-cycle runs report only the
    /// idle-weighted static term.
    ///
    /// DRAM fetch energy is billed over its *actual transfer window* —
    /// the cycles the off-chip link needs at [`DualModeArch::extern_bw`]
    /// to move the bytes behind [`EnergyReport::dram_pj`] — or the
    /// makespan, whichever is longer. A fetch-dominated flow therefore
    /// tops out at the link's saturated rate instead of compressing a
    /// physically rate-limited transfer into a short makespan, and the
    /// average stays below [`ChipCost::peak_power_mw`].
    pub fn average_power_mw(
        &self,
        arch: &DualModeArch,
        cycles: f64,
        energy: &EnergyReport,
        occupancy: ModeOccupancy,
    ) -> f64 {
        let areas = self.area_breakdown(arch);
        // Switching time keeps the driver bank active — bill it at the
        // compute density, the conservative end.
        let array_density = occupancy.compute * self.leak_mw_per_mm2_array_compute
            + occupancy.switching * self.leak_mw_per_mm2_array_compute
            + occupancy.memory * self.leak_mw_per_mm2_array_memory
            + occupancy.idle * self.leak_mw_per_mm2_array_idle;
        let static_mw = areas.arrays_mm2 * array_density
            + areas.buffer_mm2 * self.leak_mw_per_mm2_buffer
            + (areas.switch_mm2 + areas.interconnect_mm2 + areas.vector_mm2)
                * self.leak_mw_per_mm2_logic;
        if cycles <= 0.0 {
            return static_mw;
        }
        // pJ over ns is mW; cycles / GHz is ns.
        let makespan_ns = cycles / self.clock_ghz;
        let other_mw = (energy.total_pj() - energy.dram_pj) / makespan_ns;
        // The off-chip link can move at most `extern_bw` bytes/cycle, so
        // the DRAM energy's transfer window is at least bytes / bw
        // cycles even when the makespan is shorter (the simulator bills
        // per-segment weight fetches without a byte-rate limit).
        let dram_mw = if energy.dram_pj > 0.0 && self.energy.pj_per_dram_byte > 0.0 {
            let bytes = energy.dram_pj / self.energy.pj_per_dram_byte;
            let window = (bytes / arch.extern_bw().max(1) as f64).max(cycles);
            energy.dram_pj / (window / self.clock_ghz)
        } else {
            energy.dram_pj / makespan_ns
        };
        static_mw + other_mw + dram_mw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmswitch_arch::presets;

    #[test]
    fn dynaplasia_cost_is_plausible() {
        let m = AreaPowerModel::default();
        let cost = m.price(&presets::dynaplasia());
        // Order-of-magnitude sanity: a 96-array 320x320 macro is a few
        // mm², leaks tens of mW and peaks in the watts.
        assert!(cost.area_mm2 > 1.0 && cost.area_mm2 < 20.0, "{cost:?}");
        assert!(cost.leakage_mw > 10.0 && cost.leakage_mw < 500.0, "{cost:?}");
        assert!(cost.peak_power_mw > cost.leakage_mw, "{cost:?}");
        let areas = m.area_breakdown(&presets::dynaplasia());
        assert!((areas.total_mm2() - cost.area_mm2).abs() < 1e-9);
        assert!(areas.arrays_mm2 > areas.buffer_mm2);
        assert!(areas.switch_mm2 > 0.0);
    }

    #[test]
    fn every_axis_moves_the_price() {
        let m = AreaPowerModel::default();
        let base = presets::dynaplasia();
        let cost = |a: &DualModeArch| m.price(a).area_mm2;
        let more_arrays = DualModeArch::builder("x").n_arrays(128).build().unwrap();
        assert!(cost(&more_arrays) > cost(&base));
        let bigger = DualModeArch::builder("x").array_size(512, 512).build().unwrap();
        assert!(cost(&bigger) > cost(&base));
        let more_buffer = DualModeArch::builder("x")
            .buffer_bytes(256 * 1024)
            .build()
            .unwrap();
        assert!(cost(&more_buffer) > cost(&base));
        let wider_bus = DualModeArch::builder("x").extern_bw(64).build().unwrap();
        assert!(cost(&wider_bus) > cost(&base));
        let wider_writes = DualModeArch::builder("x").write_parallelism(16).build().unwrap();
        assert!(cost(&wider_writes) > cost(&base));
    }

    #[test]
    fn faster_switching_costs_more_silicon() {
        let m = AreaPowerModel::default();
        let fast = DualModeArch::builder("f").switch_cycles(1, 1).build().unwrap();
        let slow = DualModeArch::builder("s").switch_cycles(4, 4).build().unwrap();
        let a_fast = m.area_breakdown(&fast).switch_mm2;
        let a_slow = m.area_breakdown(&slow).switch_mm2;
        assert!(
            a_fast > a_slow,
            "1-cycle switch {a_fast} mm² must out-cost 4-cycle {a_slow} mm²"
        );
        // The bitline-driver method pays the sense-path premium.
        let bitline = DualModeArch::builder("b")
            .switch_method(SwitchMethod::BitlineDriver)
            .build()
            .unwrap();
        assert!(m.area_breakdown(&bitline).switch_mm2 > a_fast);
    }

    #[test]
    fn average_power_respects_duty_cycle() {
        let m = AreaPowerModel::default();
        let arch = presets::dynaplasia();
        let busy = ModeOccupancy {
            compute: 0.8,
            memory: 0.1,
            switching: 0.0,
            idle: 0.1,
        };
        let idle = ModeOccupancy {
            idle: 1.0,
            ..ModeOccupancy::default()
        };
        let none = EnergyReport::default();
        let p_busy = m.average_power_mw(&arch, 1000.0, &none, busy);
        let p_idle = m.average_power_mw(&arch, 1000.0, &none, idle);
        assert!(p_busy > p_idle, "compute-heavy duty cycle must leak more");
        // Dynamic term: 1e6 pJ over 1000 cycles at 1 GHz = 1e6/1e3 ns = 1000 mW.
        let compute = EnergyReport {
            compute_pj: 1e6,
            ..EnergyReport::default()
        };
        let with_dynamic = m.average_power_mw(&arch, 1000.0, &compute, idle);
        assert!((with_dynamic - p_idle - 1000.0).abs() < 1e-6);
        // Zero-cycle runs degrade to the static term.
        let some = EnergyReport {
            dram_pj: 123.0,
            ..EnergyReport::default()
        };
        assert!(m.average_power_mw(&arch, 0.0, &some, idle) > 0.0);
        // Average never exceeds peak when energy stays within the
        // peak event rate.
        assert!(p_busy < m.price(&arch).peak_power_mw);
    }

    #[test]
    fn dram_energy_is_rate_limited_by_the_offchip_link() {
        let m = AreaPowerModel::default();
        let arch = presets::dynaplasia();
        let idle = ModeOccupancy {
            idle: 1.0,
            ..ModeOccupancy::default()
        };
        // A fetch-dominated "flow": a huge DRAM energy crammed into a
        // 10-cycle makespan. The naive makespan amortization would
        // report ~6e6 mW; the transfer-window bill caps the DRAM term at
        // extern_bw × pj_per_dram_byte × clock, i.e. under peak.
        let fetch = EnergyReport {
            dram_pj: 1e6 * m.energy.pj_per_dram_byte,
            ..EnergyReport::default()
        };
        let avg = m.average_power_mw(&arch, 10.0, &fetch, idle);
        let peak = m.price(&arch).peak_power_mw;
        assert!(avg <= peak, "avg {avg} mW must not exceed peak {peak} mW");
        // The cap is exactly the saturated-link rate plus static power.
        let link_mw =
            arch.extern_bw() as f64 * m.energy.pj_per_dram_byte * m.clock_ghz;
        let static_mw = m.average_power_mw(&arch, 10.0, &EnergyReport::default(), idle);
        assert!((avg - static_mw - link_mw).abs() < 1e-6);
        // A leisurely makespan still amortizes over the makespan: the
        // same energy over far more cycles than the window needs.
        let slow = m.average_power_mw(&arch, 1e9, &fetch, idle);
        assert!(slow < avg);
    }
}
