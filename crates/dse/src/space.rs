//! The sweep grid: parameter axes over [`DualModeArch`] points.
//!
//! A [`SweepSpace`] is a cartesian grid over the five structural knobs
//! the paper's fixed chip never varies — array geometry, array count,
//! mode-switch latency, buffer capacity and off-chip bus width — seeded
//! from a base architecture that supplies every other DEHA parameter.
//! Instantiation is total: every grid point either becomes a valid
//! [`DualModeArch`] (built through the existing validated builder) or a
//! typed [`RejectedPoint`] diagnostic. Nothing panics on a bad axis
//! value, and the point order is deterministic (row-major over the axes
//! in declaration order), so sweeps are reproducible and cacheable.

use std::fmt;

use cmswitch_arch::{ArchError, DualModeArch};

/// The axis values of one grid point (the sweep's coordinate system).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PointSpec {
    /// Array rows.
    pub rows: usize,
    /// Array columns.
    pub cols: usize,
    /// Number of dual-mode arrays.
    pub n_arrays: usize,
    /// Per-array mode-switch latency, cycles (applied symmetrically to
    /// both directions).
    pub switch_cycles: u64,
    /// On-chip buffer capacity, bytes.
    pub buffer_bytes: u64,
    /// Off-chip bus width, bytes/cycle.
    pub bus_width: u64,
}

impl PointSpec {
    /// The spec a concrete architecture occupies (switch latency is the
    /// mean of the two directions, rounded up).
    pub fn of(arch: &DualModeArch) -> Self {
        PointSpec {
            rows: arch.array_rows(),
            cols: arch.array_cols(),
            n_arrays: arch.n_arrays(),
            switch_cycles: (arch.switch_m2c_cycles() + arch.switch_c2m_cycles()).div_ceil(2),
            buffer_bytes: arch.buffer_bytes(),
            bus_width: arch.extern_bw(),
        }
    }

    /// Compact display name, e.g. `320x320x96-sw1-b80KiB-w32`.
    pub fn label(&self) -> String {
        format!(
            "{}x{}x{}-sw{}-b{}KiB-w{}",
            self.rows,
            self.cols,
            self.n_arrays,
            self.switch_cycles,
            self.buffer_bytes / 1024,
            self.bus_width
        )
    }
}

impl fmt::Display for PointSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Why a grid point did not become an architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The architecture builder rejected the parameters.
    Arch(ArchError),
    /// Zero switch latency: a mode switch takes at least one cycle
    /// (the [`DualModeArch`] builder does not police switch cycles, so
    /// the sweep must).
    ZeroSwitchLatency,
    /// Zero buffer capacity while the base architecture advertises
    /// nonzero buffer bandwidth — bandwidth with nothing behind it.
    BufferWithoutCapacity,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Arch(e) => write!(f, "architecture builder rejected point: {e}"),
            SweepError::ZeroSwitchLatency => {
                write!(f, "mode-switch latency must be at least one cycle")
            }
            SweepError::BufferWithoutCapacity => {
                write!(f, "zero-byte buffer cannot back nonzero buffer bandwidth")
            }
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Arch(e) => Some(e),
            _ => None,
        }
    }
}

/// One instantiated grid point: its coordinates and the architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Grid coordinates.
    pub spec: PointSpec,
    /// The validated architecture at those coordinates.
    pub arch: DualModeArch,
}

/// A grid point the instantiation rejected, with the typed reason.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectedPoint {
    /// Grid coordinates of the rejected point.
    pub spec: PointSpec,
    /// Why it was rejected.
    pub reason: SweepError,
}

/// The instantiated grid: valid points in deterministic order plus every
/// rejection.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepGrid {
    /// Valid architecture points, row-major over the axes.
    pub points: Vec<SweepPoint>,
    /// Rejected grid coordinates with diagnostics.
    pub rejected: Vec<RejectedPoint>,
}

/// Cartesian axes over the dual-mode design space. Build with
/// [`SweepSpace::around`], override axes with the `with_*` setters
/// (an axis left alone stays a single point at the base value), then
/// [`SweepSpace::instantiate`].
///
/// ```
/// use cmswitch_arch::presets;
/// use cmswitch_dse::SweepSpace;
///
/// let grid = SweepSpace::around(presets::tiny())
///     .with_array_counts([4, 8])
///     .with_switch_latencies([1, 4])
///     .instantiate();
/// assert_eq!(grid.points.len(), 4);
/// assert!(grid.rejected.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct SweepSpace {
    base: DualModeArch,
    array_sizes: Vec<(usize, usize)>,
    array_counts: Vec<usize>,
    switch_latencies: Vec<u64>,
    buffer_bytes: Vec<u64>,
    bus_widths: Vec<u64>,
}

impl SweepSpace {
    /// A degenerate space holding exactly the base architecture's point;
    /// widen axes with the setters.
    pub fn around(base: DualModeArch) -> Self {
        let spec = PointSpec::of(&base);
        SweepSpace {
            array_sizes: vec![(spec.rows, spec.cols)],
            array_counts: vec![spec.n_arrays],
            switch_latencies: vec![spec.switch_cycles],
            buffer_bytes: vec![spec.buffer_bytes],
            bus_widths: vec![spec.bus_width],
            base,
        }
    }

    /// The base architecture supplying all non-swept parameters.
    pub fn base(&self) -> &DualModeArch {
        &self.base
    }

    /// Sets the array-geometry axis (rows × cols per array).
    #[must_use]
    pub fn with_array_sizes(mut self, sizes: impl Into<Vec<(usize, usize)>>) -> Self {
        self.array_sizes = sizes.into();
        self
    }

    /// Sets the array-count axis.
    #[must_use]
    pub fn with_array_counts(mut self, counts: impl Into<Vec<usize>>) -> Self {
        self.array_counts = counts.into();
        self
    }

    /// Sets the mode-switch latency axis (cycles, both directions).
    #[must_use]
    pub fn with_switch_latencies(mut self, latencies: impl Into<Vec<u64>>) -> Self {
        self.switch_latencies = latencies.into();
        self
    }

    /// Sets the buffer-capacity axis (bytes).
    #[must_use]
    pub fn with_buffer_bytes(mut self, bytes: impl Into<Vec<u64>>) -> Self {
        self.buffer_bytes = bytes.into();
        self
    }

    /// Sets the off-chip bus-width axis (bytes/cycle).
    #[must_use]
    pub fn with_bus_widths(mut self, widths: impl Into<Vec<u64>>) -> Self {
        self.bus_widths = widths.into();
        self
    }

    /// Number of grid coordinates (valid or not). An axis emptied by a
    /// setter empties the whole grid.
    pub fn len(&self) -> usize {
        self.array_sizes.len()
            * self.array_counts.len()
            * self.switch_latencies.len()
            * self.buffer_bytes.len()
            * self.bus_widths.len()
    }

    /// Whether the grid holds no coordinates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Instantiates every grid coordinate, splitting valid points from
    /// typed rejections. Deterministic: points come out row-major over
    /// (size, count, switch, buffer, bus) in axis-value order, so two
    /// instantiations of an equal space are identical.
    pub fn instantiate(&self) -> SweepGrid {
        let mut grid = SweepGrid::default();
        for &(rows, cols) in &self.array_sizes {
            for &n_arrays in &self.array_counts {
                for &switch in &self.switch_latencies {
                    for &buffer in &self.buffer_bytes {
                        for &bus in &self.bus_widths {
                            let spec = PointSpec {
                                rows,
                                cols,
                                n_arrays,
                                switch_cycles: switch,
                                buffer_bytes: buffer,
                                bus_width: bus,
                            };
                            match self.build_point(spec) {
                                Ok(arch) => grid.points.push(SweepPoint { spec, arch }),
                                Err(reason) => {
                                    grid.rejected.push(RejectedPoint { spec, reason })
                                }
                            }
                        }
                    }
                }
            }
        }
        grid
    }

    fn build_point(&self, spec: PointSpec) -> Result<DualModeArch, SweepError> {
        if spec.switch_cycles == 0 {
            return Err(SweepError::ZeroSwitchLatency);
        }
        if spec.buffer_bytes == 0 && self.base.buffer_bw() > 0 {
            return Err(SweepError::BufferWithoutCapacity);
        }
        DualModeArch::builder(format!("{}-{}", self.base.name(), spec.label()))
            .array_size(spec.rows, spec.cols)
            .n_arrays(spec.n_arrays)
            .switch_cycles(spec.switch_cycles, spec.switch_cycles)
            .buffer_bytes(spec.buffer_bytes)
            .extern_bw(spec.bus_width)
            .internal_bw(self.base.internal_bw())
            .buffer_bw(self.base.buffer_bw())
            .compute_pass_cycles(self.base.compute_pass_cycles())
            .write_row_cycles(self.base.write_row_cycles())
            .write_parallelism(self.base.write_parallelism())
            .write_cost_factor(self.base.write_cost_factor())
            .switch_method(self.base.switch_method())
            .build()
            .map_err(SweepError::Arch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmswitch_arch::presets;

    #[test]
    fn degenerate_space_is_the_base_point() {
        let base = presets::dynaplasia();
        let grid = SweepSpace::around(base.clone()).instantiate();
        assert_eq!(grid.points.len(), 1);
        assert!(grid.rejected.is_empty());
        let p = &grid.points[0];
        assert_eq!(p.spec, PointSpec::of(&base));
        // The instantiated point inherits every non-swept parameter, so
        // it is fingerprint-identical to the base chip.
        assert_eq!(p.arch.fingerprint(), base.fingerprint());
    }

    #[test]
    fn grid_is_the_axis_product_in_row_major_order() {
        let grid = SweepSpace::around(presets::tiny())
            .with_array_sizes([(32, 32), (64, 64)])
            .with_array_counts([4, 8])
            .with_bus_widths([8, 16])
            .instantiate();
        assert_eq!(grid.points.len(), 8);
        let firsts: Vec<(usize, usize, u64)> = grid
            .points
            .iter()
            .map(|p| (p.spec.rows, p.spec.n_arrays, p.spec.bus_width))
            .collect();
        assert_eq!(
            firsts,
            vec![
                (32, 4, 8),
                (32, 4, 16),
                (32, 8, 8),
                (32, 8, 16),
                (64, 4, 8),
                (64, 4, 16),
                (64, 8, 8),
                (64, 8, 16),
            ]
        );
        // Distinct coordinates ⇒ distinct chips.
        let mut fps: Vec<u64> = grid.points.iter().map(|p| p.arch.fingerprint()).collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), 8);
    }

    #[test]
    fn invalid_coordinates_become_typed_rejections_not_panics() {
        let grid = SweepSpace::around(presets::tiny())
            .with_array_counts([0, 8])
            .with_switch_latencies([0, 1])
            .with_buffer_bytes([0, 4096])
            .instantiate();
        assert_eq!(grid.points.len() + grid.rejected.len(), 8);
        // Only (8 arrays, 1 cycle, 4096 B) survives.
        assert_eq!(grid.points.len(), 1);
        assert!(grid
            .rejected
            .iter()
            .any(|r| matches!(r.reason, SweepError::ZeroSwitchLatency)));
        assert!(grid
            .rejected
            .iter()
            .any(|r| matches!(r.reason, SweepError::BufferWithoutCapacity)));
        assert!(grid.rejected.iter().any(|r| matches!(
            r.reason,
            SweepError::Arch(ArchError::ZeroParameter("n_arrays"))
        )));
        for r in &grid.rejected {
            assert!(!r.reason.to_string().is_empty());
        }
    }

    #[test]
    fn empty_axis_empties_the_grid() {
        let space = SweepSpace::around(presets::tiny()).with_array_counts(Vec::new());
        assert!(space.is_empty());
        assert_eq!(space.len(), 0);
        let grid = space.instantiate();
        assert!(grid.points.is_empty() && grid.rejected.is_empty());
    }

    #[test]
    fn spec_labels_are_compact_and_stable() {
        let spec = PointSpec {
            rows: 320,
            cols: 320,
            n_arrays: 96,
            switch_cycles: 1,
            buffer_bytes: 80 * 1024,
            bus_width: 32,
        };
        assert_eq!(spec.label(), "320x320x96-sw1-b80KiB-w32");
        assert_eq!(format!("{spec}"), spec.label());
    }
}
