//! Backend selection and session glue for the baseline strategies.
//!
//! The [`Backend`] trait and the native [`CmSwitch`] strategy live in
//! `cmswitch-core` (re-exported here for compatibility); this module
//! adds what only the baselines crate can provide — instantiating *any*
//! [`BackendKind`] ([`backend_for`]) and the [`SessionBackendExt`]
//! sugar that lets a `SessionBuilder` select a backend by kind or name.

use cmswitch_arch::DualModeArch;
use cmswitch_core::{BackendKind, SessionBuilder, UnknownBackend};

/// Re-exports of the core backend abstraction, for compatibility with
/// code that imported them from this crate.
pub use cmswitch_core::{Backend, CmSwitch};

use crate::{CimMlc, Occ, Puma};

/// Instantiates the backend strategy `kind` for `arch`.
///
/// This is the non-deprecated replacement for [`crate::by_name`]:
/// parse the name with [`BackendKind::from_name`] (whose error lists
/// the known backends), then instantiate here.
pub fn backend_for(kind: BackendKind, arch: DualModeArch) -> Box<dyn Backend> {
    match kind {
        BackendKind::Puma => Box::new(Puma::new(arch)),
        BackendKind::Occ => Box::new(Occ::new(arch)),
        BackendKind::CimMlc => Box::new(CimMlc::new(arch)),
        BackendKind::CmSwitch => Box::new(CmSwitch::new(arch)),
    }
}

/// Backend selection sugar for `SessionBuilder`: pick any published
/// strategy by [`BackendKind`] or by wire name, instantiated for the
/// builder's architecture.
///
/// ```
/// use cmswitch_arch::presets;
/// use cmswitch_baselines::SessionBackendExt;
/// use cmswitch_core::{BackendKind, Session};
///
/// let session = Session::builder(presets::tiny())
///     .backend_kind(BackendKind::CimMlc)
///     .build();
/// assert_eq!(session.backend_name(), "cim-mlc");
/// ```
pub trait SessionBackendExt: Sized {
    /// Selects the backend strategy by kind.
    #[must_use]
    fn backend_kind(self, kind: BackendKind) -> Self;

    /// Selects the backend strategy by wire name.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownBackend`] (listing the known names) when `name`
    /// is not a published backend.
    fn backend_name(self, name: &str) -> Result<Self, UnknownBackend>;
}

impl SessionBackendExt for SessionBuilder {
    fn backend_kind(self, kind: BackendKind) -> Self {
        let arch = self.arch().clone();
        self.backend(backend_for(kind, arch))
    }

    fn backend_name(self, name: &str) -> Result<Self, UnknownBackend> {
        Ok(self.backend_kind(BackendKind::from_name(name)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmswitch_arch::presets;
    use cmswitch_core::Session;

    #[test]
    fn backend_for_resolves_every_kind() {
        for kind in BackendKind::ALL {
            let b = backend_for(kind, presets::tiny());
            assert_eq!(b.name(), kind.name());
            assert_eq!(b.arch().name(), presets::tiny().name());
        }
    }

    #[test]
    fn session_builder_selects_by_kind_and_name() {
        let g = cmswitch_models::mlp::mlp(2, &[128, 256, 64]).unwrap();
        for kind in BackendKind::ALL {
            let session = Session::builder(presets::tiny()).backend_kind(kind).build();
            assert_eq!(session.backend_name(), kind.name());
            let p = session.compile_graph(&g).unwrap();
            assert!(p.predicted_latency.is_finite() && p.predicted_latency > 0.0);
        }
        let session = Session::builder(presets::tiny())
            .backend_name("puma")
            .unwrap()
            .build();
        assert_eq!(session.backend_name(), "puma");
        let err = Session::builder(presets::tiny())
            .backend_name("tvm")
            .unwrap_err();
        assert!(err.to_string().contains("cmswitch"));
    }
}
