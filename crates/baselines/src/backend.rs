use cmswitch_arch::DualModeArch;
use cmswitch_core::{CompileError, CompiledProgram, Compiler, CompilerOptions};
use cmswitch_graph::Graph;

/// A compilation strategy producing a full [`CompiledProgram`].
///
/// Implemented by the three baselines and by CMSwitch itself, so the
/// experiment harness can sweep over backends uniformly.
pub trait Backend: Send + Sync {
    /// Short backend name (`puma`, `occ`, `cim-mlc`, `cmswitch`).
    fn name(&self) -> &str;

    /// The architecture this backend targets.
    fn arch(&self) -> &DualModeArch;

    /// Compiles `graph`.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] for infeasible or malformed inputs.
    fn compile(&self, graph: &Graph) -> Result<CompiledProgram, CompileError>;
}

/// CMSwitch as a [`Backend`].
#[derive(Debug, Clone)]
pub struct CmSwitch {
    compiler: Compiler,
}

impl CmSwitch {
    /// Creates the backend with default compiler options.
    pub fn new(arch: DualModeArch) -> Self {
        CmSwitch {
            compiler: Compiler::new(arch, CompilerOptions::default()),
        }
    }

    /// Creates the backend with explicit options.
    pub fn with_options(arch: DualModeArch, options: CompilerOptions) -> Self {
        CmSwitch {
            compiler: Compiler::new(arch, options),
        }
    }
}

impl Backend for CmSwitch {
    fn name(&self) -> &str {
        "cmswitch"
    }

    fn arch(&self) -> &DualModeArch {
        self.compiler.arch()
    }

    fn compile(&self, graph: &Graph) -> Result<CompiledProgram, CompileError> {
        self.compiler.compile(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmswitch_arch::presets;

    #[test]
    fn cmswitch_backend_compiles() {
        let g = cmswitch_models::mlp::mlp(2, &[128, 256, 64]).unwrap();
        let b = CmSwitch::new(presets::tiny());
        let p = b.compile(&g).unwrap();
        assert!(p.predicted_latency > 0.0);
        assert_eq!(b.name(), "cmswitch");
    }
}
