//! Baseline CIM compilation strategies (§5.1 of the paper).
//!
//! Three prior compilers are re-implemented as scheduling policies over
//! the same IR, hardware abstraction, cost model and code generator as
//! CMSwitch, so benchmark comparisons isolate exactly the dual-mode
//! contribution. All three treat every CIM array as a *compute* array
//! (the paper's central criticism):
//!
//! * [`Puma`] — operator duplication and coarse pipeline scheduling
//!   (Ankit et al., ASPLOS'19): greedy segment packing, leftover arrays
//!   duplicate the hottest operators, operators pipeline within a
//!   segment.
//! * [`Occ`] — tiling/loop-unrolling mapping (Siemieniuk et al., TCAD'21):
//!   greedy packing with minimal-tile mapping and *sequential* operator
//!   execution (no cross-operator pipeline, no duplication).
//! * [`CimMlc`] — multi-grained pipelining + duplication (Qu et al.,
//!   ASPLOS'24), the paper's main baseline: the same segmentation DP as
//!   CMSwitch, but restricted to compute-mode-only allocations.
//!
//! All backends implement [`Backend`], as does CMSwitch itself via
//! [`CmSwitch`]. Every baseline is expressed over the *same staged
//! pipeline* as CMSwitch (`cmswitch_core::pipeline`): it composes the
//! shared `LowerStage` → `PartitionStage` → `EmitStage` chain and swaps
//! in its own segmentation stage ([`PumaSegmentStage`],
//! [`OccSegmentStage`], [`CimMlcSegmentStage`]), so backend comparisons
//! share the lowering, partitioning, cost physics, codegen — and the
//! per-stage timing breakdown.

mod backend;

pub mod cim_mlc;
pub mod common;
pub mod occ;
pub mod puma;

pub use backend::{backend_for, Backend, CmSwitch, SessionBackendExt};
pub use cim_mlc::{CimMlc, CimMlcSegmentStage};
pub use cmswitch_core::{BackendKind, UnknownBackend};
pub use occ::{Occ, OccSegmentStage};
pub use puma::{Puma, PumaSegmentStage};

/// All baseline names in the paper's plotting order.
pub const BASELINE_NAMES: &[&str] = &["puma", "occ", "cim-mlc"];

/// Builds a backend by name (`puma`, `occ`, `cim-mlc`, `cmswitch`).
///
/// # Errors
///
/// Returns [`UnknownBackend`] — whose message lists the known backend
/// names — when `name` does not resolve.
#[deprecated(
    since = "0.5.0",
    note = "use `BackendKind::from_name` + `backend_for`, or \
            `SessionBackendExt::backend_kind` on a `Session` builder"
)]
pub fn by_name(
    name: &str,
    arch: cmswitch_arch::DualModeArch,
) -> Result<Box<dyn Backend>, UnknownBackend> {
    Ok(backend_for(BackendKind::from_name(name)?, arch))
}

#[cfg(test)]
#[allow(deprecated)] // The shim's own regression tests exercise `by_name`.
mod tests {
    use super::*;
    use cmswitch_arch::presets;

    #[test]
    fn by_name_resolves_all() {
        for name in ["puma", "occ", "cim-mlc", "cmswitch"] {
            let b = by_name(name, presets::tiny()).unwrap();
            assert_eq!(b.name(), name);
        }
        let Err(err) = by_name("tvm", presets::tiny()) else {
            panic!("unknown backend must not resolve");
        };
        assert!(err.to_string().contains("known backends"));
    }
}
