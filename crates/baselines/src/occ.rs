//! OCC-style backend: per-operator tiling with sequential execution
//! (Siemieniuk et al., TCAD'21).

use cmswitch_arch::DualModeArch;
use cmswitch_core::cost::CostModel;
use cmswitch_core::frontend::lower_graph;
use cmswitch_core::partition::partition;
use cmswitch_core::{assemble_program, CompileError, CompiledProgram, CompileStats};
use cmswitch_graph::Graph;

use crate::common::{all_compute_alloc, chain_segments, greedy_ranges};
use crate::Backend;

/// The OCC baseline.
#[derive(Debug, Clone)]
pub struct Occ {
    arch: DualModeArch,
    max_segment_ops: usize,
}

impl Occ {
    /// Creates the backend.
    pub fn new(arch: DualModeArch) -> Self {
        Occ {
            arch,
            max_segment_ops: 12,
        }
    }
}

impl Backend for Occ {
    fn name(&self) -> &str {
        "occ"
    }

    fn arch(&self) -> &DualModeArch {
        &self.arch
    }

    fn compile(&self, graph: &Graph) -> Result<CompiledProgram, CompileError> {
        let start = std::time::Instant::now();
        let list = lower_graph(graph, &self.arch)?;
        let list = partition(&list, &self.arch, 1.0)?;
        let cm = CostModel::new(&self.arch);
        // OCC optimizes each operator's tiling (minimal mapping, no
        // duplication) and runs operators sequentially: segment latency is
        // the *sum* of op latencies, not the pipeline bottleneck.
        let ranges = greedy_ranges(&list, &self.arch, self.max_segment_ops);
        let mut parts = Vec::with_capacity(ranges.len());
        for r in ranges {
            let ops = &list.ops[r.0..=r.1];
            let mut alloc =
                all_compute_alloc(ops, &cm, false).ok_or(CompileError::NoFeasibleSchedule)?;
            alloc.latency = ops
                .iter()
                .zip(&alloc.ops)
                .map(|(op, a)| cm.op_latency(op, a))
                .sum();
            parts.push((r, alloc));
        }
        let segments = chain_segments(&list, &cm, parts);
        assemble_program(
            graph.name(),
            list,
            &segments,
            &self.arch,
            CompileStats {
                wall: start.elapsed(),
                ..CompileStats::default()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmswitch_arch::presets;
    use crate::Puma;

    #[test]
    fn sequential_slower_than_pipelined_puma_per_segment() {
        let g = cmswitch_models::mlp::mlp(4, &[128, 256, 256, 64]).unwrap();
        let occ = Occ::new(presets::tiny()).compile(&g).unwrap();
        let puma = Puma::new(presets::tiny()).compile(&g).unwrap();
        // Both valid; OCC uses minimal tiles only.
        for s in &occ.segments {
            assert_eq!(s.alloc.total_memory(), 0);
        }
        assert!(occ.predicted_latency.is_finite());
        assert!(puma.predicted_latency.is_finite());
    }
}
