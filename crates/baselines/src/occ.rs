//! OCC-style backend: per-operator tiling with sequential execution
//! (Siemieniuk et al., TCAD'21).

use cmswitch_arch::DualModeArch;
use cmswitch_core::pipeline::{compile_with_segmenter, Partitioned, Segmented, Stage};
use cmswitch_core::{CompileError, CompiledProgram, PipelineCx};
use cmswitch_graph::Graph;

use crate::common::{all_compute_alloc, greedy_ranges};
use crate::Backend;

/// OCC's segmentation policy as a pipeline stage: greedy packing with
/// minimal-tile mapping (no duplication) and *sequential* operator
/// execution — segment latency is the sum of op latencies, not the
/// pipeline bottleneck.
#[derive(Debug, Clone, Copy)]
pub struct OccSegmentStage {
    /// Maximum operators packed into one segment.
    pub max_segment_ops: usize,
}

impl Stage<Partitioned> for OccSegmentStage {
    type Output = Segmented;

    fn name(&self) -> &'static str {
        "segment:occ-sequential"
    }

    fn run(&self, cx: &mut PipelineCx<'_>, input: Partitioned) -> Result<Segmented, CompileError> {
        let cm = cx.cost_model();
        let ranges = greedy_ranges(&input.list, cx.arch(), self.max_segment_ops);
        let mut parts = Vec::with_capacity(ranges.len());
        for r in ranges {
            let ops = &input.list.ops[r.0..=r.1];
            let mut alloc =
                all_compute_alloc(ops, &cm, false).ok_or(CompileError::NoFeasibleSchedule)?;
            alloc.latency = ops
                .iter()
                .zip(&alloc.ops)
                .map(|(op, a)| cm.op_latency(op, a))
                .sum();
            parts.push((r, alloc));
        }
        Ok(Segmented::from_chain(input.name, input.list, &cm, parts))
    }
}

/// The OCC baseline.
#[derive(Debug, Clone)]
pub struct Occ {
    arch: DualModeArch,
}

impl Occ {
    /// Creates the backend.
    pub fn new(arch: DualModeArch) -> Self {
        Occ { arch }
    }
}

impl Backend for Occ {
    fn name(&self) -> &str {
        "occ"
    }

    fn arch(&self) -> &DualModeArch {
        &self.arch
    }

    fn compile_in(
        &self,
        cx: &mut PipelineCx<'_>,
        graph: &Graph,
    ) -> Result<CompiledProgram, CompileError> {
        let stage = OccSegmentStage {
            max_segment_ops: cx.options().max_segment_ops,
        };
        compile_with_segmenter(cx, &stage, graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Puma;
    use cmswitch_arch::presets;

    #[test]
    fn sequential_slower_than_pipelined_puma_per_segment() {
        let g = cmswitch_models::mlp::mlp(4, &[128, 256, 256, 64]).unwrap();
        let occ = Occ::new(presets::tiny()).compile(&g).unwrap();
        let puma = Puma::new(presets::tiny()).compile(&g).unwrap();
        // Both valid; OCC uses minimal tiles only.
        for s in &occ.segments {
            assert_eq!(s.alloc.total_memory(), 0);
        }
        assert!(occ.predicted_latency.is_finite());
        assert!(puma.predicted_latency.is_finite());
    }
}
