//! Shared machinery for the all-compute baselines.

use cmswitch_arch::DualModeArch;
use cmswitch_core::allocation::{OpAllocation, SegmentAllocation};
use cmswitch_core::cost::CostModel;
use cmswitch_core::frontend::{OpList, SegOp};

/// Re-export of the shared segment-chaining helper (now owned by
/// `cmswitch-core`, since the DP's backtrack materialization uses the
/// same physics): turns `(range, allocation)` parts into
/// [`cmswitch_core::segment::Segment`]s with Eq. 4 inter costs charged.
pub use cmswitch_core::segment::chain_segments;

use cmswitch_core::pipeline::{
    compile_with_segmenter, Partitioned, PipelineCx, Segmented, Stage,
};
use cmswitch_core::{CompileError, CompiledProgram, CompilerOptions};
use cmswitch_graph::Graph;

/// Drives the shared staged pipeline for a baseline segmentation stage
/// standalone: the same `lower` → `partition` → `segmenter` → `emit`
/// chain CMSwitch itself runs (via
/// [`cmswitch_core::pipeline::compile_with_segmenter`]), with default
/// options and a private context. Per-stage wall timings land in the
/// program's `stats.stage_wall` exactly like a CMSwitch compile.
///
/// Backends reached through a `cmswitch_core::Session` do not go
/// through here — the session prepares the context (shared cache,
/// cancellation, diagnostics) and calls `Backend::compile_in` directly.
///
/// # Errors
///
/// Propagates any stage's [`CompileError`].
#[deprecated(
    since = "0.5.0",
    note = "implement `Backend::compile_in` and use `Backend::compile`, or drive \
            `cmswitch_core::pipeline::compile_with_segmenter` with your own context"
)]
pub fn compile_via_stages<S>(
    arch: &DualModeArch,
    segmenter: &S,
    graph: &Graph,
) -> Result<CompiledProgram, CompileError>
where
    S: Stage<Partitioned, Output = Segmented>,
{
    let start = std::time::Instant::now();
    let options = CompilerOptions::default();
    let mut cx = PipelineCx::new(arch, &options);
    let mut program = compile_with_segmenter(&mut cx, segmenter, graph)?;
    let _ = cx.finalize(&mut program.stats);
    program.stats.wall = start.elapsed();
    Ok(program)
}

/// All-compute allocation for a slice of ops: every operator gets its
/// minimal weight tiles; with `duplicate`, leftover arrays are granted
/// greedily to the operator with the highest current latency (weight
/// duplication).
pub fn all_compute_alloc(
    ops: &[SegOp],
    cm: &CostModel<'_>,
    duplicate: bool,
) -> Option<SegmentAllocation> {
    let n = cm.arch().n_arrays();
    let mut allocs: Vec<OpAllocation> = ops
        .iter()
        .map(|o| OpAllocation {
            compute: o.min_tiles.max(1),
            mem_in: 0,
            mem_out: 0,
        })
        .collect();
    let used: usize = allocs.iter().map(|a| a.compute).sum();
    if used > n {
        return None;
    }
    if duplicate {
        let mut leftover = n - used;
        while leftover > 0 {
            let (worst, cur) = allocs
                .iter()
                .enumerate()
                .map(|(i, a)| (i, cm.op_latency(&ops[i], a)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("comparable"))?;
            let mut trial = allocs[worst];
            trial.compute += 1;
            if cm.op_latency(&ops[worst], &trial) < cur - 1e-12 {
                allocs[worst] = trial;
                leftover -= 1;
            } else {
                break;
            }
        }
        balance_reload(ops, cm, &mut allocs);
    }
    let mut alloc = SegmentAllocation {
        ops: allocs,
        reuse: Vec::new(),
        latency: 0.0,
    };
    alloc.latency = cm.intra_latency(ops, &alloc);
    Some(alloc)
}

/// Duplication-vs-reload balancing: shrink the largest static-weight
/// compute allocations while `intra + max(Com)·Latency_write` improves —
/// the same trade the dual-mode allocator makes, applied here so that
/// CMSwitch-vs-baseline comparisons isolate the dual-mode dimension
/// rather than reload awareness.
fn balance_reload(
    ops: &[SegOp],
    cm: &CostModel<'_>,
    allocs: &mut Vec<OpAllocation>,
) {
    let lat_write = cm.arch().lat_write_array() as f64;
    let intra = |a: &[OpAllocation]| -> f64 {
        ops.iter()
            .zip(a)
            .map(|(op, al)| cm.op_latency(op, al))
            .fold(0.0, f64::max)
    };
    let reload = |a: &[OpAllocation]| -> f64 {
        ops.iter()
            .zip(a)
            .filter(|(op, _)| op.weight_static)
            .map(|(_, al)| al.compute as f64 * lat_write)
            .fold(0.0, f64::max)
    };
    loop {
        let cur = intra(allocs) + reload(allocs);
        let max_com = ops
            .iter()
            .zip(allocs.iter())
            .filter(|(op, _)| op.weight_static)
            .map(|(_, a)| a.compute)
            .max()
            .unwrap_or(0);
        if max_com == 0 {
            break;
        }
        let mut trial = allocs.clone();
        let mut changed = false;
        for (op, a) in ops.iter().zip(trial.iter_mut()) {
            if op.weight_static && a.compute == max_com && a.compute > op.min_tiles.max(1) {
                a.compute -= 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if intra(&trial) + reload(&trial) < cur - 1e-9 {
            *allocs = trial;
        } else {
            break;
        }
    }
}

/// Greedy segmentation: pack consecutive operators while their minimal
/// tiles fit the chip (capped at `max_ops` per segment).
pub fn greedy_ranges(list: &OpList, arch: &DualModeArch, max_ops: usize) -> Vec<(usize, usize)> {
    let n = arch.n_arrays();
    let mut ranges = Vec::new();
    let mut start = 0usize;
    let mut tiles = 0usize;
    for (i, op) in list.ops.iter().enumerate() {
        let need = op.min_tiles.max(1);
        if i > start && (tiles + need > n || i - start >= max_ops) {
            ranges.push((start, i - 1));
            start = i;
            tiles = 0;
        }
        tiles += need;
    }
    if start < list.ops.len() {
        ranges.push((start, list.ops.len() - 1));
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmswitch_core::frontend::lower_graph;
    use cmswitch_core::partition::partition;
    use cmswitch_arch::presets;

    fn list() -> (OpList, cmswitch_arch::DualModeArch) {
        let g = cmswitch_models::mlp::mlp(2, &[128, 256, 128, 64]).unwrap();
        let arch = presets::tiny();
        let l = lower_graph(&g, &arch).unwrap();
        (partition(&l, &arch, 1.0).unwrap(), arch)
    }

    #[test]
    fn all_compute_has_no_memory_arrays() {
        let (l, arch) = list();
        let cm = CostModel::new(&arch);
        let a = all_compute_alloc(&l.ops[0..1], &cm, true).unwrap();
        assert_eq!(a.total_memory(), 0);
        assert!(a.total_compute() >= 1);
    }

    #[test]
    fn duplication_improves_or_matches() {
        let (l, arch) = list();
        let cm = CostModel::new(&arch);
        let base = all_compute_alloc(&l.ops[0..1], &cm, false).unwrap();
        let dup = all_compute_alloc(&l.ops[0..1], &cm, true).unwrap();
        assert!(dup.latency <= base.latency + 1e-9);
    }

    #[test]
    fn greedy_ranges_cover_contiguously() {
        let (l, arch) = list();
        let ranges = greedy_ranges(&l, &arch, 8);
        let mut next = 0;
        for (lo, hi) in &ranges {
            assert_eq!(*lo, next);
            next = hi + 1;
        }
        assert_eq!(next, l.ops.len());
    }

    #[test]
    fn chain_charges_inter_costs() {
        let (l, arch) = list();
        let cm = CostModel::new(&arch);
        let ranges = greedy_ranges(&l, &arch, 2);
        let parts: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let a = all_compute_alloc(&l.ops[r.0..=r.1], &cm, true).unwrap();
                (r, a)
            })
            .collect();
        let segments = chain_segments(&l, &cm, parts);
        assert!(segments[0].inter_before > 0.0); // initial switch + load
        if segments.len() > 1 {
            assert!(segments[1].inter_before > 0.0); // reload at least
        }
    }
}
