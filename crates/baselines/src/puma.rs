//! PUMA-style backend: operator duplication + pipeline scheduling over
//! all-compute arrays (Ankit et al., ASPLOS'19).

use cmswitch_arch::DualModeArch;
use cmswitch_core::cost::CostModel;
use cmswitch_core::frontend::lower_graph;
use cmswitch_core::partition::partition;
use cmswitch_core::{assemble_program, CompileError, CompiledProgram, CompileStats};
use cmswitch_graph::Graph;

use crate::common::{all_compute_alloc, chain_segments, greedy_ranges};
use crate::Backend;

/// The PUMA baseline.
#[derive(Debug, Clone)]
pub struct Puma {
    arch: DualModeArch,
    max_segment_ops: usize,
}

impl Puma {
    /// Creates the backend.
    pub fn new(arch: DualModeArch) -> Self {
        Puma {
            arch,
            max_segment_ops: 12,
        }
    }
}

impl Backend for Puma {
    fn name(&self) -> &str {
        "puma"
    }

    fn arch(&self) -> &DualModeArch {
        &self.arch
    }

    fn compile(&self, graph: &Graph) -> Result<CompiledProgram, CompileError> {
        let start = std::time::Instant::now();
        let list = lower_graph(graph, &self.arch)?;
        let list = partition(&list, &self.arch, 1.0)?;
        let cm = CostModel::new(&self.arch);
        // PUMA packs greedily and duplicates into leftover arrays, but its
        // pipeline is coarse: it synchronizes at operator granularity, so
        // each segment additionally pays the slowest op once more as a
        // fill/drain penalty.
        let ranges = greedy_ranges(&list, &self.arch, self.max_segment_ops);
        let mut parts = Vec::with_capacity(ranges.len());
        for r in ranges {
            let ops = &list.ops[r.0..=r.1];
            let mut alloc =
                all_compute_alloc(ops, &cm, true).ok_or(CompileError::NoFeasibleSchedule)?;
            // Coarse synchronization penalty: one extra bottleneck pass.
            alloc.latency *= 2.0;
            parts.push((r, alloc));
        }
        let segments = chain_segments(&list, &cm, parts);
        assemble_program(
            graph.name(),
            list,
            &segments,
            &self.arch,
            CompileStats {
                wall: start.elapsed(),
                ..CompileStats::default()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmswitch_arch::presets;

    #[test]
    fn compiles_all_compute() {
        let g = cmswitch_models::mlp::mlp(2, &[128, 256, 64]).unwrap();
        let p = Puma::new(presets::tiny()).compile(&g).unwrap();
        for s in &p.segments {
            assert_eq!(s.alloc.total_memory(), 0);
        }
        assert!(p.predicted_latency.is_finite());
        cmswitch_metaop::validate(&p.flow).unwrap();
    }
}
