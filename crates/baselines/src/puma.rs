//! PUMA-style backend: operator duplication + pipeline scheduling over
//! all-compute arrays (Ankit et al., ASPLOS'19).

use cmswitch_arch::DualModeArch;
use cmswitch_core::pipeline::{compile_with_segmenter, Partitioned, Segmented, Stage};
use cmswitch_core::{CompileError, CompiledProgram, PipelineCx};
use cmswitch_graph::Graph;

use crate::common::{all_compute_alloc, greedy_ranges};
use crate::Backend;

/// PUMA's segmentation policy as a pipeline stage: greedy packing,
/// all-compute allocation with weight duplication into leftover arrays,
/// and a coarse-synchronization penalty — PUMA pipelines at operator
/// granularity, so each segment pays the slowest op once more as a
/// fill/drain cost.
#[derive(Debug, Clone, Copy)]
pub struct PumaSegmentStage {
    /// Maximum operators packed into one segment.
    pub max_segment_ops: usize,
}

impl Stage<Partitioned> for PumaSegmentStage {
    type Output = Segmented;

    fn name(&self) -> &'static str {
        "segment:puma-greedy"
    }

    fn run(&self, cx: &mut PipelineCx<'_>, input: Partitioned) -> Result<Segmented, CompileError> {
        let cm = cx.cost_model();
        let ranges = greedy_ranges(&input.list, cx.arch(), self.max_segment_ops);
        let mut parts = Vec::with_capacity(ranges.len());
        for r in ranges {
            let ops = &input.list.ops[r.0..=r.1];
            let mut alloc =
                all_compute_alloc(ops, &cm, true).ok_or(CompileError::NoFeasibleSchedule)?;
            // Coarse synchronization penalty: one extra bottleneck pass.
            alloc.latency *= 2.0;
            parts.push((r, alloc));
        }
        Ok(Segmented::from_chain(input.name, input.list, &cm, parts))
    }
}

/// The PUMA baseline.
#[derive(Debug, Clone)]
pub struct Puma {
    arch: DualModeArch,
}

impl Puma {
    /// Creates the backend.
    pub fn new(arch: DualModeArch) -> Self {
        Puma { arch }
    }
}

impl Backend for Puma {
    fn name(&self) -> &str {
        "puma"
    }

    fn arch(&self) -> &DualModeArch {
        &self.arch
    }

    fn compile_in(
        &self,
        cx: &mut PipelineCx<'_>,
        graph: &Graph,
    ) -> Result<CompiledProgram, CompileError> {
        let stage = PumaSegmentStage {
            max_segment_ops: cx.options().max_segment_ops,
        };
        compile_with_segmenter(cx, &stage, graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmswitch_arch::presets;

    #[test]
    fn compiles_all_compute() {
        let g = cmswitch_models::mlp::mlp(2, &[128, 256, 64]).unwrap();
        let p = Puma::new(presets::tiny()).compile(&g).unwrap();
        for s in &p.segments {
            assert_eq!(s.alloc.total_memory(), 0);
        }
        assert!(p.predicted_latency.is_finite());
        cmswitch_metaop::validate(&p.flow).unwrap();
    }

    #[test]
    fn reports_stage_timings_like_cmswitch() {
        let g = cmswitch_models::mlp::mlp(2, &[128, 256, 64]).unwrap();
        let p = Puma::new(presets::tiny()).compile(&g).unwrap();
        let names: Vec<_> = p.stats.stage_wall.iter().map(|t| t.stage).collect();
        assert_eq!(names, ["lower", "partition", "segment:puma-greedy", "emit"]);
    }
}
