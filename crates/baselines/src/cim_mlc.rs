//! CIM-MLC-style backend (Qu et al., ASPLOS'24) — the paper's main
//! baseline: multi-grained pipelining and weight duplication with
//! DP-optimized segmentation, but **all arrays fixed in compute mode**.
//!
//! Implemented as the same segmentation DP as CMSwitch with the
//! allocation restricted to compute-only (minimal tiles + duplication),
//! so CMSwitch-vs-CIM-MLC comparisons isolate exactly the dual-mode
//! dimension the paper adds.

use std::collections::HashMap;

use cmswitch_arch::DualModeArch;
use cmswitch_core::allocation::SegmentAllocation;
use cmswitch_core::cost::CostModel;
use cmswitch_core::frontend::OpList;
use cmswitch_core::pipeline::{compile_with_segmenter, Partitioned, Segmented, Stage};
use cmswitch_core::{CancelToken, CompileError, CompiledProgram, PipelineCx};
use cmswitch_graph::Graph;

use crate::common::all_compute_alloc;
use crate::Backend;

/// CIM-MLC's segmentation policy as a pipeline stage: CMSwitch's Eq. 3
/// DP over candidate windows, scored with all-compute allocations.
#[derive(Debug, Clone, Copy)]
pub struct CimMlcSegmentStage {
    /// Maximum operators per DP window.
    pub max_segment_ops: usize,
}

/// A segment chain before inter costs: `(range, allocation)` parts.
type Parts = Vec<((usize, usize), SegmentAllocation)>;

impl CimMlcSegmentStage {
    fn dp_parts(
        &self,
        list: &OpList,
        cm: &CostModel<'_>,
        cancel: &CancelToken,
    ) -> Result<Parts, CompileError> {
        let m = list.ops.len();
        let window = self.max_segment_ops;
        let mut allocs: HashMap<(usize, usize), Option<SegmentAllocation>> = HashMap::new();
        let mut alloc_of = |i: usize, j: usize| -> Option<SegmentAllocation> {
            if let Some(hit) = allocs.get(&(i, j)) {
                return hit.clone();
            }
            let a = all_compute_alloc(&list.ops[i..=j], cm, true);
            allocs.insert((i, j), a.clone());
            a
        };

        let mut dp: HashMap<(usize, usize), (f64, usize)> = HashMap::new();
        for j in 0..m {
            let i_lo = j + 1 - window.min(j + 1);
            for i in i_lo..=j {
                // Same abort granularity as the CMSwitch DP: one poll
                // per candidate window.
                cancel.check()?;
                let Some(alloc) = alloc_of(i, j) else { continue };
                let intra = alloc.latency;
                if i == 0 {
                    let cost = cm.switch_cost(&SegmentAllocation::empty(), &alloc)
                        + cm.reload_cost(&list.ops[i..=j], &alloc);
                    dp.insert((0, j), (cost + intra, usize::MAX));
                    continue;
                }
                let k_lo = i - window.min(i);
                let mut best: Option<(f64, usize)> = None;
                for k in k_lo..i {
                    let Some(&(prev_cost, _)) = dp.get(&(k, i - 1)) else {
                        continue;
                    };
                    let Some(prev_alloc) = alloc_of(k, i - 1) else { continue };
                    let inter = cm.inter_cost(
                        list,
                        (k, i - 1),
                        &prev_alloc,
                        (i, j),
                        &list.ops[i..=j],
                        &alloc,
                    );
                    let total = prev_cost + inter + intra;
                    if best.is_none_or(|(b, _)| total < b) {
                        best = Some((total, k));
                    }
                }
                if let Some(b) = best {
                    dp.insert((i, j), b);
                }
            }
        }
        let (mut i, mut j) = (0..m)
            .filter_map(|i| dp.get(&(i, m - 1)).map(|&(c, _)| (i, c)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("comparable"))
            .map(|(i, _)| (i, m - 1))
            .ok_or(CompileError::NoFeasibleSchedule)?;
        let mut ranges = Vec::new();
        loop {
            ranges.push((i, j));
            let &(_, prev) = dp.get(&(i, j)).expect("on path");
            if prev == usize::MAX {
                break;
            }
            j = i - 1;
            i = prev;
        }
        ranges.reverse();
        Ok(ranges
            .into_iter()
            .map(|r| {
                let a = alloc_of(r.0, r.1).expect("on path");
                (r, a)
            })
            .collect())
    }
}

impl Stage<Partitioned> for CimMlcSegmentStage {
    type Output = Segmented;

    fn name(&self) -> &'static str {
        "segment:cim-mlc-dp"
    }

    fn run(&self, cx: &mut PipelineCx<'_>, input: Partitioned) -> Result<Segmented, CompileError> {
        let cm = cx.cost_model();
        let cancel = cx.cancel_token().clone();
        let parts = self.dp_parts(&input.list, &cm, &cancel)?;
        Ok(Segmented::from_chain(input.name, input.list, &cm, parts))
    }
}

/// The CIM-MLC baseline.
#[derive(Debug, Clone)]
pub struct CimMlc {
    arch: DualModeArch,
}

impl CimMlc {
    /// Creates the backend.
    pub fn new(arch: DualModeArch) -> Self {
        CimMlc { arch }
    }
}

impl Backend for CimMlc {
    fn name(&self) -> &str {
        "cim-mlc"
    }

    fn arch(&self) -> &DualModeArch {
        &self.arch
    }

    fn compile_in(
        &self,
        cx: &mut PipelineCx<'_>,
        graph: &Graph,
    ) -> Result<CompiledProgram, CompileError> {
        let stage = CimMlcSegmentStage {
            max_segment_ops: cx.options().max_segment_ops,
        };
        compile_with_segmenter(cx, &stage, graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, CmSwitch, Occ, Puma};
    use cmswitch_arch::presets;

    #[test]
    fn mlc_is_all_compute() {
        let g = cmswitch_models::mlp::mlp(2, &[256, 256, 128, 64]).unwrap();
        let p = CimMlc::new(presets::tiny()).compile(&g).unwrap();
        for s in &p.segments {
            assert_eq!(s.alloc.total_memory(), 0, "{:?}", s.alloc);
        }
        cmswitch_metaop::validate(&p.flow).unwrap();
    }

    #[test]
    fn mlc_beats_or_matches_greedy_baselines() {
        let g = cmswitch_models::mlp::mlp(2, &[256, 512, 256, 128]).unwrap();
        let arch = presets::tiny();
        let mlc = CimMlc::new(arch.clone()).compile(&g).unwrap();
        let puma = Puma::new(arch.clone()).compile(&g).unwrap();
        let occ = Occ::new(arch).compile(&g).unwrap();
        assert!(mlc.predicted_latency <= puma.predicted_latency * 1.001);
        assert!(mlc.predicted_latency <= occ.predicted_latency * 1.001);
    }

    #[test]
    fn cmswitch_beats_or_matches_mlc() {
        // The headline property: the dual-mode-aware compiler optimizes a
        // strict superset of CIM-MLC's space, so it can never be worse
        // under the shared cost model.
        let g = cmswitch_models::mlp::mlp(4, &[256, 512, 256, 128]).unwrap();
        let arch = presets::tiny();
        let ours = CmSwitch::new(arch.clone()).compile(&g).unwrap();
        let mlc = CimMlc::new(arch).compile(&g).unwrap();
        assert!(
            ours.predicted_latency <= mlc.predicted_latency * 1.01,
            "cmswitch {} vs mlc {}",
            ours.predicted_latency,
            mlc.predicted_latency
        );
    }
}
