//! Flow↔graph consistency: the emitted meta-operator flow must execute
//! exactly the CIM work the graph contains — every lowered operator
//! appears exactly once, total MACs and weight bytes are conserved, and
//! switch statements reconcile with the segment allocations.

use std::collections::HashMap;

use cmswitch::graph::lower;
use cmswitch::metaop::Stmt;
use cmswitch::prelude::*;

fn compute_stmts(flow: &cmswitch::metaop::Flow) -> Vec<cmswitch::metaop::ComputeStmt> {
    let mut out = Vec::new();
    for stmt in flow.stmts() {
        match stmt {
            Stmt::Parallel(body) => {
                for s in body {
                    if let Stmt::Compute(c) = s {
                        out.push(c.clone());
                    }
                }
            }
            Stmt::Compute(c) => out.push(c.clone()),
            _ => {}
        }
    }
    out
}

#[test]
fn flow_covers_all_cim_work_exactly_once() {
    let graphs = [
        cmswitch::models::mlp::mlp(4, &[256, 512, 256, 64]).unwrap(),
        cmswitch::models::resnet::resnet18(1).unwrap(),
    ];
    for graph in graphs {
        let arch = presets::dynaplasia();
        let program = Session::builder(arch).build().compile_graph(&graph)
            .unwrap();
        let stmts = compute_stmts(&program.flow);

        // One compute statement per scheduled (sub-)operator, in order.
        assert_eq!(stmts.len(), program.ops.len(), "{}", graph.name());
        for (stmt, op) in stmts.iter().zip(&program.ops) {
            assert_eq!(stmt.op, op.name);
            assert_eq!((stmt.m, stmt.k, stmt.n, stmt.units), (op.m, op.k, op.n, op.units));
        }

        // MAC conservation against the unpartitioned lowering.
        let lowered = lower::lower(&graph).unwrap();
        let graph_macs: u64 = lowered.ops.iter().map(|o| o.macs).sum();
        let flow_macs: u64 = stmts
            .iter()
            .map(|c| (c.units * c.m * c.k * c.n) as u64)
            .sum();
        // Partitioning rounds chunk boundaries; allow 1% slack.
        let rel = (graph_macs as f64 - flow_macs as f64).abs() / graph_macs as f64;
        assert!(rel < 0.01, "{}: graph {graph_macs} flow {flow_macs}", graph.name());
    }
}

#[test]
fn per_op_allocation_matches_emitted_arrays() {
    let graph = cmswitch::models::mlp::mlp(2, &[256, 512, 128]).unwrap();
    let arch = presets::dynaplasia();
    let program = Session::builder(arch).build().compile_graph(&graph)
        .unwrap();
    let stmts = compute_stmts(&program.flow);
    let by_name: HashMap<&str, &cmswitch::metaop::ComputeStmt> =
        stmts.iter().map(|c| (c.op.as_str(), c)).collect();
    for seg in &program.segments {
        for (name, alloc) in seg.op_names.iter().zip(&seg.alloc.ops) {
            let stmt = by_name[name.as_str()];
            assert_eq!(stmt.compute_arrays.len(), alloc.compute, "{name} compute");
            assert_eq!(stmt.mem_in_arrays.len(), alloc.mem_in, "{name} mem_in");
            assert_eq!(stmt.mem_out_arrays.len(), alloc.mem_out, "{name} mem_out");
        }
    }
}

#[test]
fn switch_statements_reconcile_with_allocations() {
    // Total arrays ever switched to compute must be at least the largest
    // per-segment compute demand and at most (switch ops can toggle back
    // and forth) the total across segments.
    let graph = cmswitch::models::mlp::mlp(1, &[256, 256, 256, 256]).unwrap();
    let arch = presets::tiny();
    let program = Session::builder(arch).build().compile_graph(&graph)
        .unwrap();
    let stats = program.flow.stats();
    let max_compute = program
        .segments
        .iter()
        .map(|s| s.alloc.total_compute() as u64)
        .max()
        .unwrap_or(0);
    let total_compute: u64 = program
        .segments
        .iter()
        .map(|s| s.alloc.total_compute() as u64)
        .sum();
    assert!(stats.arrays_to_compute >= max_compute);
    assert!(stats.arrays_to_compute <= total_compute);
}

#[test]
fn optimizer_preserves_compiled_flow_semantics() {
    // The peephole pass on a real compiled flow: still validates, never
    // adds statements, and reduces (or keeps) the switch count.
    let graph = cmswitch::models::mlp::mlp(2, &[256, 256, 256, 64]).unwrap();
    let program = Session::builder(presets::tiny()).build().compile_graph(&graph)
        .unwrap();
    let (optimized, _) = cmswitch::metaop::optimize(&program.flow);
    cmswitch::metaop::validate(&optimized).unwrap();
    assert!(optimized.len() <= program.flow.len());
    let before = program.flow.stats();
    let after = optimized.stats();
    assert!(after.arrays_to_compute <= before.arrays_to_compute);
    assert!(after.arrays_to_memory <= before.arrays_to_memory);
    // Same compute work either way.
    assert_eq!(after.compute_ops, before.compute_ops);
}
