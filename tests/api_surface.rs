//! Public-API surface guard: snapshots the facade `prelude` export
//! list. An accidental removal, rename or addition in
//! `cmswitch::prelude` fails this test, making public-surface changes
//! deliberate (update `EXPECTED` *and* the docs when the surface
//! really should change).

/// The blessed prelude surface, sorted.
const EXPECTED: &[&str] = &[
    "AllocationCache",
    "AreaPowerModel",
    "ArrayMode",
    "ArtifactStore",
    "Backend",
    "BackendKind",
    "BatchJob",
    "BatchReport",
    "CancelToken",
    "ChipCost",
    "ChipScheduler",
    "CoSimOptions",
    "CompileError",
    "CompileOutcome",
    "CompileRequest",
    "CompileServer",
    "CompileService",
    "CompileStats",
    "CompiledProgram",
    "Compiler",
    "CompilerOptions",
    "DecodeLoop",
    "DecodeOptions",
    "DecodeTenant",
    "DiagnosticEvent",
    "Diagnostics",
    "DpMode",
    "DualModeArch",
    "EmitStage",
    "EngineReport",
    "EventEngine",
    "Flow",
    "Graph",
    "GraphBuilder",
    "Lint",
    "LowerStage",
    "ParetoFrontier",
    "PartitionStage",
    "PipelineCx",
    "SegmentStage",
    "SequentialModel",
    "ServeReply",
    "ServeRequest",
    "ServerOptions",
    "ServiceOptions",
    "Session",
    "SessionBackendExt",
    "SessionBuilder",
    "SessionSimExt",
    "Severity",
    "SimulationOutcome",
    "Stage",
    "StoreFetch",
    "StoreKey",
    "SweepRecord",
    "SweepReport",
    "SweepRunner",
    "SweepSpace",
    "TenancyPolicy",
    "TenancyReport",
    "TenantProgram",
    "Ticket",
    "UnknownBackend",
    "Verifier",
    "VerifyCx",
    "VerifyFinding",
    "VerifyReport",
    "VerifyStage",
    "backend_for",
    "by_name",
    "presets",
    "print_flow",
    "simulate",
];

/// Extracts the re-exported identifiers from the `pub mod prelude`
/// block of the facade's source.
fn prelude_exports() -> Vec<String> {
    let source = include_str!("../src/lib.rs");
    let start = source
        .find("pub mod prelude {")
        .expect("facade must define a prelude");
    let block = &source[start..];
    let end = block.find("\n}").expect("prelude block must close");
    let block = &block[..end];

    let mut items = Vec::new();
    for stmt in block.split(';') {
        let Some(use_pos) = stmt.find("pub use ") else {
            continue;
        };
        let path = stmt[use_pos + "pub use ".len()..].trim();
        // Either `root::path::{A, B, C}` or `root::path::Item`.
        if let Some(brace) = path.find('{') {
            let inner = path[brace + 1..].trim_end_matches('}');
            for item in inner.split(',') {
                let item = item.trim();
                if !item.is_empty() {
                    items.push(item.to_string());
                }
            }
        } else if let Some(last) = path.rsplit("::").next() {
            items.push(last.trim().to_string());
        }
    }
    items.sort();
    items
}

#[test]
fn prelude_surface_matches_snapshot() {
    let actual = prelude_exports();
    let expected: Vec<String> = {
        let mut v: Vec<String> = EXPECTED.iter().map(|s| s.to_string()).collect();
        v.sort();
        v
    };
    assert_eq!(
        actual, expected,
        "cmswitch::prelude changed — if intentional, update tests/api_surface.rs \
         (EXPECTED) and the README/ARCHITECTURE docs"
    );
}

#[test]
fn snapshot_items_exist_and_have_expected_shapes() {
    // Spot-check that the snapshot names are real, importable items
    // with the roles the docs promise (pure compile-time assertions).
    use cmswitch::prelude::*;

    fn assert_backend<T: Backend>() {}
    assert_backend::<cmswitch::baselines::CmSwitch>();
    assert_backend::<cmswitch::baselines::Puma>();

    let _kinds: [BackendKind; 4] = BackendKind::ALL;
    let _builder: SessionBuilder = Session::builder(presets::tiny());
    let _opts: CompilerOptions = CompilerOptions::default()
        .with_dp_mode(DpMode::BoundPruned)
        .with_partition_budget(1.0);
    let _svc_opts: ServiceOptions = ServiceOptions::default().with_workers(1);
    let _token: CancelToken = CancelToken::new();
    let _diag: Diagnostics = Diagnostics::new();
    let _verifier: Verifier = Verifier::new();
    let _report: VerifyReport = VerifyReport::new();
    assert!(Severity::Deny > Severity::Warn);
    let _opts: CompilerOptions = CompilerOptions::default().with_verify(true);
    let _srv_opts: ServerOptions = ServerOptions::default().with_workers(1);
    assert!(matches!(StoreFetch::Miss, StoreFetch::Miss));
    let _model: AreaPowerModel = AreaPowerModel::default();
    let cost: ChipCost = _model.price(&presets::tiny());
    assert!(cost.area_mm2 > 0.0);
    let _space: SweepSpace = SweepSpace::around(presets::tiny());
}
