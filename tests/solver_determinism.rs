//! Solve-parallelism determinism: plans are bit-identical at every
//! `solve_workers` setting.
//!
//! The segmentation DP fans allocation solves out across a worker pool
//! ([`cmswitch::compiler::solvepool`]), but the set of windows to solve
//! and the recurrence that consumes them stay sequential, and warm
//! starts are a pure function of the window signature — so the compiled
//! plan may not depend on worker count, scheduling, or batch interleave.
//! This suite pins that contract:
//!
//! * the full 9-model registry × all 4 backends, compiled at
//!   `solve_workers` ∈ {1, 2, 4, 8}, must produce bit-identical
//!   [`CompiledProgram`]s (everything except wall-clock/concurrency
//!   counters in `stats`) against the sequential baseline;
//! * a property test over random MLP graphs × the 3 arch presets does
//!   the same for shapes the registry does not cover.

use proptest::prelude::*;

use cmswitch::models::registry;
use cmswitch::prelude::*;

/// A fresh cold session: `kind` backend, `workers` solve workers. The
/// CNN models get a narrower DP window (`max_segment_ops`): their large
/// per-op tile counts make debug-build MIP solves expensive, and the
/// bit-identity property under test is independent of the window cap —
/// it only has to be the *same* cap at every worker count.
fn session(kind: BackendKind, workers: usize, model: &str) -> Session {
    let mut options = CompilerOptions::default();
    if ["mobilenetv2", "resnet18", "resnet50", "vgg16"].contains(&model) {
        options.max_segment_ops = 4;
    }
    options.solve_workers = workers;
    Session::builder(presets::dynaplasia())
        .backend_kind(kind)
        .options(options)
        .build()
}

/// Everything except `stats` must match bit-for-bit. Wall-clock times
/// and solver-invocation counters may legitimately vary with worker
/// count (duplicate in-flight solves are idempotent but counted); the
/// plan-shaped stats may not.
fn assert_same_plan(base: &CompiledProgram, other: &CompiledProgram, what: &str) {
    assert_eq!(base.flow, other.flow, "flow differs: {what}");
    assert_eq!(base.ops, other.ops, "ops differ: {what}");
    assert_eq!(base.op_deps, other.op_deps, "op_deps differ: {what}");
    assert_eq!(base.segments, other.segments, "segments differ: {what}");
    assert_eq!(
        base.predicted_latency.to_bits(),
        other.predicted_latency.to_bits(),
        "predicted_latency differs: {what} ({} vs {})",
        base.predicted_latency,
        other.predicted_latency
    );
    assert_eq!(base.stats.n_ops, other.stats.n_ops, "n_ops differ: {what}");
    assert_eq!(
        base.stats.n_segments, other.stats.n_segments,
        "n_segments differ: {what}"
    );
    // Pruning decisions and batch composition are made sequentially, so
    // these counters are worker-invariant by construction.
    assert_eq!(
        base.stats.dp_windows_pruned, other.stats.dp_windows_pruned,
        "dp_windows_pruned differs: {what}"
    );
    assert_eq!(
        base.stats.solve_batches, other.stats.solve_batches,
        "solve_batches differ: {what}"
    );
}

#[test]
fn registry_plans_identical_at_every_worker_count_on_all_backends() {
    // Sequence length 8 keeps the billion-parameter transformers
    // affordable in debug builds; the bit-identity property under test
    // is independent of the op count. The default backend gets the full
    // {2, 4, 8} sweep; the baseline backends share the same DP + solve
    // pool underneath, so one parallel point each suffices.
    for kind in BackendKind::ALL {
        let sweep: &[usize] = if kind == BackendKind::CmSwitch {
            &[2, 4, 8]
        } else {
            &[4]
        };
        for &model in registry::ALL_MODELS {
            let graph = registry::build(model, 1, 8).expect("registered model");
            let base = session(kind, 1, model)
                .compile_graph(&graph)
                .expect("sequential baseline compiles");
            for &workers in sweep {
                let p = session(kind, workers, model)
                    .compile_graph(&graph)
                    .expect("parallel compile succeeds");
                assert_same_plan(
                    &base,
                    &p,
                    &format!("{model} on {} at {workers} workers", kind.name()),
                );
            }
        }
    }
}

#[test]
fn auto_worker_count_matches_the_sequential_plan() {
    // `solve_workers = 0` resolves to available parallelism — whatever
    // that is on the host, the plan must match workers = 1.
    let graph = registry::build("resnet18", 1, 0).unwrap();
    let base = session(BackendKind::CmSwitch, 1, "resnet18")
        .compile_graph(&graph)
        .unwrap();
    let auto = session(BackendKind::CmSwitch, 0, "resnet18")
        .compile_graph(&graph)
        .unwrap();
    assert_same_plan(&base, &auto, "resnet18 at auto workers");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn random_mlps_identical_across_presets_and_worker_counts(
        preset_idx in 0usize..3,
        widths in proptest::collection::vec(8usize..192, 2..5),
        batch in 1usize..3,
        workers in 2usize..9,
    ) {
        let arch = match preset_idx {
            0 => presets::dynaplasia(),
            1 => presets::prime(),
            _ => presets::tiny(),
        };
        let graph = cmswitch::models::mlp::mlp(batch, &widths).expect("valid mlp");
        let seq = Session::builder(arch.clone()).solve_workers(1).build()
            .compile_graph(&graph);
        // Oversized layers on the tiny preset fail identically in both
        // modes; the determinism claim is about successful plans.
        prop_assume!(seq.is_ok());
        let base = seq.unwrap();
        let par = Session::builder(arch).solve_workers(workers).build()
            .compile_graph(&graph)
            .expect("parallel compile succeeds where sequential did");
        assert_same_plan(&base, &par, &format!("mlp{widths:?} at {workers} workers"));
    }
}
