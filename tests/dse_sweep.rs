//! Integration tests for the design-space exploration subsystem
//! (`cmswitch::dse`): grid instantiation, typed rejection, sweep
//! determinism across worker counts, and property-tested Pareto
//! frontier minimality/completeness.

use proptest::prelude::*;

use cmswitch::arch::presets;
use cmswitch::dse::{frontier_indices, ParetoFrontier, SweepError, SweepGrid};
use cmswitch::prelude::*;

fn workload() -> Vec<(String, Graph)> {
    vec![
        (
            "mlp-a".to_string(),
            cmswitch::models::mlp::mlp(2, &[96, 128, 64]).unwrap(),
        ),
        (
            "mlp-b".to_string(),
            cmswitch::models::mlp::mlp(3, &[64, 96, 96, 32]).unwrap(),
        ),
    ]
}

#[test]
fn degenerate_single_point_space_sweeps_the_base_chip() {
    let base = presets::tiny();
    let grid = SweepSpace::around(base.clone()).instantiate();
    assert_eq!(grid.points.len(), 1);
    assert!(grid.rejected.is_empty());
    assert_eq!(grid.points[0].arch.fingerprint(), base.fingerprint());

    let report = SweepRunner::new(workload()).run(&grid);
    assert_eq!(report.records.len(), 1);
    assert!(report.failed.is_empty());
    let record = &report.records[0];
    assert!(record.latency_cycles > 0.0);
    assert!(record.energy_pj > 0.0);
    assert!(record.cost.area_mm2 > 0.0);
    assert!(record.avg_power_mw <= record.cost.peak_power_mw);
    // The single point trivially is the whole frontier.
    let frontier = report.frontier();
    assert_eq!(frontier.indices, vec![0]);
    assert!(frontier.contains(0));
}

#[test]
fn invalid_grid_points_are_rejected_with_typed_diagnostics() {
    // Zero arrays, zero switch latency and a capacity-less buffer are
    // all invalid for different, *distinguishable* reasons — and none
    // of them panic.
    let grid = SweepSpace::around(presets::tiny())
        .with_array_counts([0, 8])
        .with_switch_latencies([0, 1])
        .with_buffer_bytes([0, 4096])
        .instantiate();
    assert_eq!(grid.points.len(), 1, "only the fully valid corner survives");
    assert_eq!(grid.rejected.len(), 7);
    assert!(grid
        .rejected
        .iter()
        .any(|r| matches!(r.reason, SweepError::ZeroSwitchLatency)));
    assert!(grid
        .rejected
        .iter()
        .any(|r| matches!(r.reason, SweepError::BufferWithoutCapacity)));
    assert!(grid
        .rejected
        .iter()
        .any(|r| matches!(r.reason, SweepError::Arch(_))));
    for r in &grid.rejected {
        // Every rejection renders a human-readable diagnostic.
        assert!(!r.reason.to_string().is_empty());
    }

    // Rejections ride along into the sweep report; the valid point still
    // gets measured.
    let report = SweepRunner::new(workload()).run(&grid);
    assert_eq!(report.records.len(), 1);
    assert_eq!(report.rejected.len(), 7);
    assert!(report.failed.is_empty());
}

#[test]
fn sweep_records_are_deterministic_across_worker_counts() {
    let grid = SweepSpace::around(presets::tiny())
        .with_array_counts([4, 8])
        .with_switch_latencies([1, 4])
        .instantiate();
    let reports: Vec<_> = [1usize, 2, 4]
        .into_iter()
        .map(|workers| {
            SweepRunner::new(workload())
                .with_workers(workers)
                .with_options(CompilerOptions::default().with_solve_workers(workers))
                .run(&grid)
        })
        .collect();
    let reference = &reports[0];
    assert_eq!(reference.records.len(), 4);
    for report in &reports[1..] {
        assert_eq!(report.records.len(), reference.records.len());
        for (a, b) in report.records.iter().zip(&reference.records) {
            // Everything measured is bit-identical; only wall time may
            // differ.
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.fingerprint, b.fingerprint);
            assert_eq!(a.latency_cycles, b.latency_cycles);
            assert_eq!(a.energy_pj, b.energy_pj);
            assert_eq!(a.cost, b.cost);
            assert_eq!(a.avg_power_mw, b.avg_power_mw);
            assert_eq!(a.per_model, b.per_model);
            // Every measured point obeys the power envelope: DRAM
            // energy is billed over its transfer window, so average
            // power cannot exceed the saturated-rate peak rating.
            assert!(
                a.avg_power_mw <= a.cost.peak_power_mw,
                "avg {} mW exceeds peak {} mW",
                a.avg_power_mw,
                a.cost.peak_power_mw
            );
        }
        assert_eq!(report.frontier().indices, reference.frontier().indices);
    }
}

#[test]
fn shared_cache_warms_across_runners() {
    let grid = SweepSpace::around(presets::tiny())
        .with_array_counts([4, 8])
        .instantiate();
    let first = SweepRunner::new(workload());
    let cold = first.run(&grid);
    assert!(cold.solves > 0);

    // A *different* runner sharing the same cache is warm from the
    // start.
    let second = SweepRunner::new(workload()).with_cache(std::sync::Arc::clone(first.cache()));
    let warm = second.run(&grid);
    assert_eq!(warm.solves, 0);
    assert!(warm.cache_hits > 0);
    for (c, w) in cold.records.iter().zip(&warm.records) {
        assert_eq!(c.latency_cycles, w.latency_cycles);
        assert_eq!(c.energy_pj, w.energy_pj);
    }
}

#[test]
fn empty_sweep_has_empty_frontier() {
    let report = SweepRunner::new(workload()).run(&SweepGrid::default());
    assert!(report.records.is_empty());
    assert!(report.frontier().is_empty());
    assert_eq!(report.table().lines().count(), 1, "header only");
}

fn dominates(a: &[f64; 3], b: &[f64; 3]) -> bool {
    cmswitch::dse::dominates(a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The frontier is *minimal*: no returned point is dominated by any
    // input point (in particular not by another frontier point).
    #[test]
    fn pareto_frontier_is_minimal(
        points in proptest::collection::vec(
            proptest::array::uniform3(0.0f64..100.0), 1..40),
    ) {
        let pts: Vec<[f64; 3]> = points;
        let frontier = frontier_indices(&pts);
        prop_assert!(!frontier.is_empty(), "a non-empty set has a frontier");
        for &i in &frontier {
            for (j, other) in pts.iter().enumerate() {
                prop_assert!(
                    !dominates(other, &pts[i]),
                    "frontier point {i} {:?} is dominated by {j} {:?}",
                    pts[i], other
                );
            }
        }
    }

    // The frontier is *complete*: every non-dominated input point is
    // returned.
    #[test]
    fn pareto_frontier_is_complete(
        points in proptest::collection::vec(
            proptest::array::uniform3(0.0f64..100.0), 1..40),
    ) {
        let pts: Vec<[f64; 3]> = points;
        let frontier = frontier_indices(&pts);
        for (i, p) in pts.iter().enumerate() {
            let dominated = pts.iter().any(|other| dominates(other, p));
            prop_assert!(
                frontier.contains(&i) != dominated,
                "point {i} {p:?} membership disagrees with dominance"
            );
        }
    }

    // Quantized coordinates force ties and duplicates; the two
    // properties must survive them (duplicates of a frontier point all
    // stay on the frontier).
    #[test]
    fn pareto_frontier_handles_ties_and_duplicates(
        points in proptest::collection::vec(
            proptest::array::uniform3(0.0f64..4.0), 2..30),
    ) {
        let pts: Vec<[f64; 3]> = points
            .into_iter()
            .map(|p| [p[0].floor(), p[1].floor(), p[2].floor()])
            .collect();
        let frontier = frontier_indices(&pts);
        for &i in &frontier {
            // A duplicate of a frontier point is also on the frontier.
            for (j, other) in pts.iter().enumerate() {
                if *other == pts[i] {
                    prop_assert!(frontier.contains(&j));
                }
            }
        }
        // Minimality under ties: no frontier member dominates another.
        for &i in &frontier {
            for &j in &frontier {
                prop_assert!(!dominates(&pts[i], &pts[j]) || i == j);
            }
        }
    }
}

#[test]
fn frontier_extraction_matches_raw_indices_on_real_records() {
    let grid = SweepSpace::around(presets::tiny())
        .with_array_counts([4, 8])
        .with_bus_widths([8, 16])
        .instantiate();
    let report = SweepRunner::new(workload()).run(&grid);
    let frontier: ParetoFrontier = report.frontier();
    let raw: Vec<[f64; 3]> = report.records.iter().map(|r| r.objectives()).collect();
    assert_eq!(frontier.indices, frontier_indices(&raw));
    // The rendered table lists exactly the frontier rows (plus header).
    let table = frontier.table(&report.records);
    assert_eq!(table.lines().count(), frontier.len() + 1);
}
