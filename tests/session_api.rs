//! Facade-level tests of the unified Session/CompileRequest surface:
//! backend-generic compilation and batching (bit-identical to
//! sequential per-backend compiles), deadline/token cancellation
//! reaching into the segmentation DP, and typed diagnostics that
//! reconcile with `CompileStats`.

use std::sync::Arc;
use std::time::Duration;

use cmswitch::prelude::*;

fn small_graphs() -> Vec<(String, Graph)> {
    vec![
        ("mlp-a".into(), cmswitch::models::mlp::mlp(1, &[64, 64, 64, 64]).unwrap()),
        ("mlp-b".into(), cmswitch::models::mlp::mlp(1, &[64, 64, 64, 64]).unwrap()),
        ("mlp-c".into(), cmswitch::models::mlp::mlp(2, &[128, 256, 128]).unwrap()),
    ]
}

#[test]
fn one_session_entry_point_serves_all_four_backends() {
    // The acceptance bar: one Session surface compiles via puma, occ,
    // cim-mlc and cmswitch, with a shared cache and a worker pool.
    let shared_cache = AllocationCache::new();
    for kind in BackendKind::ALL {
        let session = Session::builder(presets::tiny())
            .backend_kind(kind)
            .workers(2)
            .cache(Arc::clone(&shared_cache))
            .build();
        assert_eq!(session.backend_name(), kind.name());
        assert_eq!(session.workers(), 2);
        let requests: Vec<CompileRequest> = small_graphs()
            .into_iter()
            .map(|(name, g)| CompileRequest::new(g).with_label(name))
            .collect();
        let report = session.compile_batch(&requests);
        assert_eq!(report.stats.compiled, 3, "{kind}: {}", report.summary());
        assert_eq!(report.stats.failed, 0);
    }
    // The dual-mode backend went through the shared cache.
    assert!(shared_cache.hits() > 0);
}

#[test]
fn batched_compiles_are_bit_identical_to_sequential_per_backend() {
    for kind in BackendKind::ALL {
        let session = Session::builder(presets::tiny())
            .backend_kind(kind)
            .workers(3)
            .build();
        let requests: Vec<CompileRequest> = small_graphs()
            .into_iter()
            .map(|(name, g)| CompileRequest::new(g).with_label(name))
            .collect();
        let report = session.compile_batch(&requests);
        // Sequential reference: the standalone backend compile.
        let backend = backend_for(kind, presets::tiny());
        for ((_, graph), outcome) in small_graphs().iter().zip(&report.outcomes) {
            let batched = outcome.result.as_ref().unwrap_or_else(|e| {
                panic!("{kind}/{}: {e}", outcome.name);
            });
            let solo = backend.compile(graph).unwrap();
            assert_eq!(
                batched.predicted_latency.to_bits(),
                solo.predicted_latency.to_bits(),
                "{kind}/{}",
                outcome.name
            );
            assert_eq!(batched.flow, solo.flow, "{kind}/{}", outcome.name);
            assert_eq!(batched.segments, solo.segments, "{kind}/{}", outcome.name);
        }
    }
}

#[test]
fn compile_service_is_backend_generic() {
    // Baseline fleets get the same pool + cache + BatchReport as
    // CMSwitch through the generic service constructor.
    let svc = CompileService::with_backend(
        backend_for(BackendKind::CimMlc, presets::tiny()),
        ServiceOptions::default().with_workers(2),
    );
    assert_eq!(svc.backend_name(), "cim-mlc");
    let jobs: Vec<BatchJob> = small_graphs()
        .into_iter()
        .map(|(name, g)| BatchJob::new(name, g))
        .collect();
    let report = svc.compile_batch(&jobs);
    assert_eq!(report.stats.compiled, 3, "{}", report.summary());
    let solo = backend_for(BackendKind::CimMlc, presets::tiny())
        .compile(&small_graphs()[2].1)
        .unwrap();
    let batched = report.get("mlp-c").unwrap().result.as_ref().unwrap();
    assert_eq!(batched.predicted_latency.to_bits(), solo.predicted_latency.to_bits());
    assert_eq!(batched.flow, solo.flow);
}

#[test]
fn empty_service_batch_early_returns() {
    // Regression for the empty-slice worker-pool bug.
    let svc = CompileService::new(presets::tiny(), ServiceOptions::default().with_workers(4));
    let report = svc.compile_batch(&[]);
    assert!(report.outcomes.is_empty());
    assert_eq!(report.stats.workers, 0);
}

#[test]
fn zero_deadline_on_transformer_cancels_before_the_dp_completes() {
    let session = Session::builder(presets::dynaplasia()).build();
    let graph = cmswitch::models::registry::build("bert-base", 1, 32).unwrap();
    let err = session
        .compile(CompileRequest::new(graph).with_deadline(Duration::ZERO))
        .unwrap_err();
    assert_eq!(err, CompileError::Cancelled);
}

#[test]
fn short_deadline_aborts_a_transformer_mid_compile() {
    // Lower+partition on bert-base take microseconds; the cold
    // segmentation DP takes orders of magnitude longer than 2ms, so the
    // deadline must fire inside the DP's window loop.
    let session = Session::builder(presets::dynaplasia()).build();
    let graph = cmswitch::models::registry::build("bert-base", 1, 32).unwrap();
    let err = session
        .compile(CompileRequest::new(graph).with_deadline(Duration::from_millis(2)))
        .unwrap_err();
    assert_eq!(err, CompileError::Cancelled);
}

#[test]
fn short_deadline_aborts_a_parallel_compile_without_poisoning_the_session() {
    // Same 2 ms deadline as above, but with the DP's allocation solves
    // fanned out across 4 workers: the CancelToken is polled inside the
    // batch, so the deadline must still abort — and because the solve
    // pool lives strictly inside one compile, the *same* session must
    // compile cleanly afterwards (no poisoned pool state).
    let session = Session::builder(presets::dynaplasia())
        .solve_workers(4)
        .build();
    let graph = cmswitch::models::registry::build("bert-base", 1, 32).unwrap();
    let err = session
        .compile(CompileRequest::new(graph).with_deadline(Duration::from_millis(2)))
        .unwrap_err();
    assert_eq!(err, CompileError::Cancelled);
    let small = cmswitch::models::mlp::mlp(1, &[64, 64, 32]).unwrap();
    let outcome = session
        .compile(CompileRequest::new(small))
        .expect("session stays usable after a cancelled parallel compile");
    assert!(!outcome.program.segments.is_empty());
}

#[test]
fn explicit_cancel_token_is_shared_across_clones() {
    let session = Session::builder(presets::tiny()).build();
    let token = CancelToken::new();
    let clone = token.clone();
    clone.cancel();
    let err = session
        .compile(
            CompileRequest::new(cmswitch::models::mlp::mlp(1, &[64, 64]).unwrap())
                .with_cancel(token),
        )
        .unwrap_err();
    assert_eq!(err, CompileError::Cancelled);
}

#[test]
fn batch_requests_honor_per_request_deadlines() {
    let session = Session::builder(presets::tiny()).workers(2).build();
    let requests = vec![
        CompileRequest::new(cmswitch::models::mlp::mlp(1, &[64, 64]).unwrap()).with_label("ok"),
        CompileRequest::new(cmswitch::models::mlp::mlp(1, &[64, 64]).unwrap())
            .with_label("doomed")
            .with_deadline(Duration::ZERO),
    ];
    let report = session.compile_batch(&requests);
    assert!(report.get("ok").unwrap().result.is_ok());
    assert_eq!(
        *report.get("doomed").unwrap().result.as_ref().unwrap_err(),
        CompileError::Cancelled
    );
    assert_eq!(report.stats.compiled, 1);
    assert_eq!(report.stats.failed, 1);
}

#[test]
fn diagnostics_pruning_counts_match_compile_stats() {
    // Five 256-wide layers on the 8-array tiny chip: the capacity
    // prefilter provably skips every multi-op window.
    let session = Session::builder(presets::tiny()).build();
    let graph = cmswitch::models::mlp::mlp(1, &[256, 256, 256, 256, 256]).unwrap();
    let outcome = session.compile(CompileRequest::new(graph)).unwrap();
    assert!(outcome.stats().dp_windows_pruned > 0);
    assert_eq!(
        outcome.diagnostics.windows_pruned(),
        outcome.stats().dp_windows_pruned,
        "typed events must reconcile with CompileStats: {}",
        outcome.diagnostics
    );
    // Cache traffic reconciles too.
    let (hits, misses) = outcome.diagnostics.cache_traffic();
    assert_eq!(hits, outcome.stats().cache_hits);
    assert!(misses > 0, "a cold compile must miss");
    // And the events are matchable (the typed replacement for prose).
    assert!(outcome
        .diagnostics
        .events()
        .iter()
        .any(|e| matches!(e, DiagnosticEvent::DpWindowsPruned { infeasible, .. } if *infeasible > 0)));
}

#[test]
fn exhaustive_override_reports_zero_pruning() {
    let session = Session::builder(presets::tiny()).build();
    let graph = cmswitch::models::mlp::mlp(2, &[128, 256, 128]).unwrap();
    let outcome = session
        .compile(
            CompileRequest::new(graph)
                .with_options(CompilerOptions::default().with_dp_mode(DpMode::Exhaustive)),
        )
        .unwrap();
    assert_eq!(outcome.stats().dp_windows_pruned, 0);
    assert_eq!(outcome.diagnostics.windows_pruned(), 0);
}

#[test]
fn deprecated_compiler_shim_matches_session() {
    #[allow(deprecated)]
    let via_shim = {
        let compiler = Compiler::new(presets::tiny(), CompilerOptions::default());
        compiler
            .compile(&cmswitch::models::mlp::mlp(2, &[128, 256, 128]).unwrap())
            .unwrap()
    };
    let via_session = Session::builder(presets::tiny())
        .build()
        .compile_graph(&cmswitch::models::mlp::mlp(2, &[128, 256, 128]).unwrap())
        .unwrap();
    assert_eq!(
        via_shim.predicted_latency.to_bits(),
        via_session.predicted_latency.to_bits()
    );
    assert_eq!(via_shim.flow, via_session.flow);
}
