//! Property tests for the event-driven simulator (vendored proptest:
//! deterministic sampling, no shrinking).
//!
//! Invariants:
//!
//! * the event-engine makespan never beats the analytic
//!   `latency_lower_bound` (the Eq. 9/10 whole-chip relaxation);
//! * energy equals the sum of its per-component breakdown and matches
//!   the schedule-independent flow oracle bit-for-bit;
//! * per-array busy intervals never overlap (an array serves one event
//!   at a time — the resource constraint the engine schedules around);
//! * on single-segment flows the engine matches the sequential
//!   reference model bit-exactly (no overlap is legal there, so the
//!   two models must coincide, not merely agree approximately).

use proptest::prelude::*;

use cmswitch::arch::{presets, ArrayId, DualModeArch};
use cmswitch::metaop::{
    ComputeStmt, Flow, MemDirection, MemLoc, MemStmt, Stmt, SwitchKind, VectorStmt,
    WeightLoadStmt,
};
use cmswitch::prelude::*;
use cmswitch::sim::engine::latency_lower_bound;
use cmswitch::sim::EngineReport;

fn preset(idx: usize) -> DualModeArch {
    match idx % 3 {
        0 => presets::dynaplasia(),
        1 => presets::prime(),
        _ => presets::tiny(),
    }
}

fn assert_timelines_disjoint(report: &EngineReport) -> Result<(), TestCaseError> {
    for t in &report.timelines {
        for pair in t.intervals.windows(2) {
            prop_assert!(
                pair[0].end <= pair[1].start,
                "array {:?}: busy interval {:?} overlaps {:?}",
                t.array,
                pair[0],
                pair[1]
            );
            prop_assert!(pair[0].start <= pair[0].end);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn compiled_flow_invariants(
        width_idx in proptest::collection::vec(0usize..5, 2..5),
        batch in 1usize..3,
        preset_idx in 0usize..3,
    ) {
        const WIDTHS: [usize; 5] = [64, 96, 128, 192, 256];
        let dims: Vec<usize> = width_idx.iter().map(|&i| WIDTHS[i]).collect();
        let arch = preset(preset_idx);
        let graph = cmswitch::models::mlp::mlp(batch, &dims).expect("mlp builds");
        let session = Session::builder(arch.clone()).build();
        let program = session.compile_graph(&graph).expect("mlp compiles");

        let seq = SequentialModel.simulate(&program.flow, &arch).expect("sequential");
        let eng = EventEngine::new().simulate_program(&program, &arch).expect("engine");

        // Makespan sits between the analytic lower bound and the
        // sequential replay.
        let lb = latency_lower_bound(&program.flow, &arch);
        prop_assert!(
            eng.total_cycles >= lb,
            "makespan {} beat the analytic lower bound {}",
            eng.total_cycles,
            lb
        );
        prop_assert!(eng.total_cycles <= seq.total_cycles);
        prop_assert_eq!(eng.serialized_cycles.to_bits(), seq.total_cycles.to_bits());

        // Energy equals the sum of its per-component breakdown …
        let e = eng.energy;
        let component_sum =
            e.compute_pj + e.onchip_pj + e.dram_pj + e.write_pj + e.switch_pj + e.vector_pj;
        prop_assert_eq!(e.total_pj().to_bits(), component_sum.to_bits());
        for part in [e.compute_pj, e.onchip_pj, e.dram_pj, e.write_pj, e.switch_pj, e.vector_pj] {
            prop_assert!(part.is_finite() && part >= 0.0);
        }
        // … and matches the schedule-independent flow oracle bit-for-bit.
        let oracle = cmswitch::sim::energy::estimate(
            &program.flow,
            &arch,
            &cmswitch::sim::EnergyModel::default(),
        );
        prop_assert_eq!(e.total_pj().to_bits(), oracle.total_pj().to_bits());

        // Per-segment energy is a partition of a subset of the total.
        let seg_sum: f64 = eng.segments.iter().map(|s| s.energy_pj).sum();
        prop_assert!(seg_sum <= e.total_pj() * (1.0 + 1e-12) + 1e-9);
        prop_assert_eq!(eng.segments.len(), program.segments.len());

        // An array serves one event at a time.
        assert_timelines_disjoint(&eng)?;
    }
}

/// Builds a well-formed single-segment flow: one `TOC` switch covering
/// every compute array, one `parallel` body (loads for static operators,
/// compute statements, fused `.aux` vector work), one final write-back.
fn single_segment_flow(
    arch: &DualModeArch,
    ms: &[usize],
    ks: &[usize],
    static_flags: &[usize],
    aux_flags: &[usize],
) -> Flow {
    let n_ops = ms.len().min(ks.len()).min(static_flags.len()).min(aux_flags.len()).min(3);
    let arrays_per_op = 2usize;
    let mut flow = Flow::new("single-segment");
    let compute_arrays: Vec<ArrayId> = (0..n_ops * arrays_per_op)
        .map(|i| ArrayId(i as u32))
        .collect();
    flow.push(Stmt::switch(SwitchKind::ToCompute, compute_arrays.clone()));

    // The remaining arrays stay in memory mode and buffer operator
    // traffic (shared across operators on purpose).
    let mem_arrays: Vec<ArrayId> = (n_ops * arrays_per_op..arch.n_arrays())
        .map(|i| ArrayId(i as u32))
        .collect();

    let mut body = Vec::new();
    for o in 0..n_ops {
        let op = format!("op{o}");
        let arrays = compute_arrays[o * arrays_per_op..(o + 1) * arrays_per_op].to_vec();
        let weight_static = static_flags[o].is_multiple_of(2);
        let (m, k) = (ms[o].max(1), ks[o].max(1));
        if weight_static {
            body.push(Stmt::LoadWeights(WeightLoadStmt {
                op: op.clone(),
                arrays: arrays.clone(),
                bytes: (arrays.len() as u64) * arch.array_bytes(),
            }));
        }
        body.push(Stmt::Compute(ComputeStmt {
            op: op.clone(),
            compute_arrays: arrays,
            mem_in_arrays: if o == 0 { mem_arrays.clone() } else { Vec::new() },
            mem_out_arrays: Vec::new(),
            m,
            k,
            n: 64,
            units: 1,
            in_bytes: (m * k) as u64,
            out_bytes: (m * 64) as u64,
            weight_static,
        }));
        if aux_flags[o].is_multiple_of(2) {
            body.push(Stmt::Vector(VectorStmt {
                op: format!("{op}.aux"),
                flops: (m * 64) as u64,
            }));
        }
    }
    flow.push(Stmt::Parallel(body));
    flow.push(Stmt::Mem(MemStmt {
        loc: MemLoc::Main,
        direction: MemDirection::Write,
        bytes: 4096,
        label: "final output".into(),
    }));
    flow
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn single_segment_flows_match_sequential_bit_exactly(
        ms in proptest::collection::vec(1usize..512, 1..4),
        ks in proptest::collection::vec(1usize..160, 1..4),
        static_flags in proptest::collection::vec(0usize..2, 1..4),
        aux_flags in proptest::collection::vec(0usize..2, 1..4),
        preset_idx in 0usize..3,
    ) {
        let arch = preset(preset_idx);
        let flow = single_segment_flow(&arch, &ms, &ks, &static_flags, &aux_flags);
        let seq = SequentialModel.simulate(&flow, &arch).expect("valid flow");
        let eng = EventEngine::new().simulate(&flow, &arch).expect("valid flow");
        // Single-segment flows admit no overlap, so the two models must
        // coincide exactly, not merely agree approximately.
        prop_assert_eq!(eng.total_cycles.to_bits(), seq.total_cycles.to_bits());
        prop_assert_eq!(eng.serialized_cycles.to_bits(), seq.total_cycles.to_bits());
        prop_assert!(eng.overlap_saved() == 0.0);
        prop_assert!(eng.total_cycles >= latency_lower_bound(&flow, &arch));
        assert_timelines_disjoint(&eng)?;
    }
}
