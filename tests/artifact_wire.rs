//! Wire-format coverage for the persistent artifact codec
//! (`compiler::artifact`).
//!
//! Three layers:
//!
//! * **Registry round-trip** — every registry model, compiled by every
//!   backend, survives `decode(encode(p))` bit-identically: structural
//!   equality, byte-identical re-encode, and the decoded program
//!   verifies and simulates exactly like the original.
//! * **Property sampling** — proptest-driven MLP shapes across the
//!   architecture presets round-trip and re-encode deterministically.
//! * **Error paths** — truncation at every framing boundary, a wrong
//!   version header, a corrupted payload and kind confusion all fail
//!   with the precise typed [`ArtifactError`] — never a panic, never a
//!   silently wrong program.

use proptest::prelude::*;

use cmswitch::arch::{presets, DualModeArch};
use cmswitch::compiler::artifact::{
    decode_program, encode_program, ArtifactError, FORMAT_VERSION,
};
use cmswitch::compiler::CompiledProgram;
use cmswitch::models::registry;
use cmswitch::prelude::*;
use cmswitch::sim::timing::simulate;

fn compile(kind: BackendKind, arch: &DualModeArch, graph: &Graph) -> CompiledProgram {
    Session::builder(arch.clone())
        .backend_kind(kind)
        .build()
        .compile_graph(graph)
        .expect("model compiles")
}

/// Round-trip `program` and check every equivalence we can observe:
/// structural equality, byte-stable re-encode, verifier parity and
/// simulator parity.
fn assert_roundtrip(program: &CompiledProgram, arch: &DualModeArch, what: &str) {
    let bytes = encode_program(program);
    let decoded = decode_program(&bytes).unwrap_or_else(|e| panic!("{what}: decode failed: {e}"));
    assert_eq!(&decoded, program, "{what}: decoded program differs");
    assert_eq!(
        encode_program(&decoded),
        bytes,
        "{what}: re-encode is not byte-identical"
    );

    let verifier = Verifier::new();
    let a = verifier.run(program, arch);
    let b = verifier.run(&decoded, arch);
    assert_eq!(
        (a.deny_count(), a.warn_count()),
        (b.deny_count(), b.warn_count()),
        "{what}: verifier disagrees after round-trip"
    );

    let sim_a = simulate(&program.flow, arch).expect("original simulates");
    let sim_b = simulate(&decoded.flow, arch).expect("decoded simulates");
    assert_eq!(
        sim_a.total_cycles, sim_b.total_cycles,
        "{what}: simulated makespan changed across the wire"
    );
}

#[test]
fn registry_round_trips_on_every_backend() {
    let arch = presets::dynaplasia();
    for kind in BackendKind::ALL {
        for &model in registry::ALL_MODELS {
            let graph = registry::build(model, 1, 16).expect("registered model builds");
            let program = compile(kind, &arch, &graph);
            assert_roundtrip(&program, &arch, &format!("{model} on {kind:?}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sampled_mlps_round_trip(
        preset in 0usize..3,
        depth in 1usize..4,
        widths in proptest::collection::vec(64usize..512, 2..5),
    ) {
        let arch = match preset {
            0 => presets::dynaplasia(),
            1 => presets::prime(),
            _ => presets::tiny(),
        };
        let graph = cmswitch::models::mlp::mlp(depth, &widths).unwrap();
        let program = compile(BackendKind::CmSwitch, &arch, &graph);
        let bytes = encode_program(&program);
        let decoded = decode_program(&bytes).unwrap();
        prop_assert_eq!(&decoded, &program);
        prop_assert_eq!(encode_program(&decoded), bytes);
    }
}

fn sample_bytes() -> Vec<u8> {
    let arch = presets::tiny();
    let graph = cmswitch::models::mlp::mlp(2, &[128, 256, 128]).unwrap();
    encode_program(&compile(BackendKind::CmSwitch, &arch, &graph))
}

#[test]
fn truncation_at_every_boundary_is_a_typed_error() {
    let bytes = sample_bytes();
    // Header boundaries (magic, version, kind, length, checksum) and a
    // payload cut: each must be Truncated, never a panic or bogus data.
    for cut in [0, 4, 8, 11, 16, 24, 31, bytes.len() - 1] {
        match decode_program(&bytes[..cut]) {
            Err(ArtifactError::Truncated { needed, available }) => {
                assert!(needed > available, "cut {cut}: nonsensical Truncated")
            }
            other => panic!("cut {cut}: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn wrong_version_header_is_rejected_up_front() {
    let mut bytes = sample_bytes();
    assert_ne!(FORMAT_VERSION, 0xFF, "bump the test byte with the format");
    bytes[8] = 0xFF; // version is LE at offset 8
    match decode_program(&bytes) {
        Err(ArtifactError::UnsupportedVersion(v)) => assert_eq!(v, 0xFF),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn corrupted_magic_and_payload_are_rejected() {
    let mut bad_magic = sample_bytes();
    bad_magic[0] = b'X';
    assert!(matches!(
        decode_program(&bad_magic),
        Err(ArtifactError::BadMagic)
    ));

    let mut flipped = sample_bytes();
    let mid = 32 + (flipped.len() - 32) / 2;
    flipped[mid] ^= 0xFF;
    assert!(matches!(
        decode_program(&flipped),
        Err(ArtifactError::ChecksumMismatch { .. })
    ));
}
