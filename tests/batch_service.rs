//! Facade-level integration tests for the batch compilation service:
//! the whole model registry through one `CompileService`, cold and warm.

use cmswitch::arch::presets;
use cmswitch::compiler::{
    AllocatorKind, BatchJob, CompileService, CompilerOptions, ServiceOptions,
};
use cmswitch::models::registry;

fn registry_fleet() -> Vec<BatchJob> {
    registry::build_all(1, 32)
        .unwrap()
        .into_iter()
        .map(|(name, graph)| BatchJob::new(name, graph))
        .collect()
}

fn fast_options(workers: usize) -> ServiceOptions {
    // The fast allocator keeps this affordable in debug builds; caching
    // semantics are identical to the MIP path (the cache key embeds the
    // allocator kind), so the cold/warm invocation accounting is the same
    // property the MIP path has.
    ServiceOptions::default()
        .with_workers(workers)
        .with_compiler(CompilerOptions::default().with_allocator(AllocatorKind::Fast))
}

fn registry_service(workers: usize) -> CompileService {
    CompileService::new(presets::dynaplasia(), fast_options(workers))
}

#[test]
fn warm_registry_batch_strictly_reduces_solver_invocations() {
    let jobs = registry_fleet();
    let service = registry_service(2);

    let cold = service.compile_batch(&jobs);
    assert_eq!(cold.stats.compiled, jobs.len(), "{}", cold.summary());
    assert_eq!(cold.stats.failed, 0);
    assert!(cold.stats.solver_invocations() > 0);
    // Even cold, intra-model block repetition hits the shared cache.
    assert!(cold.stats.cache_hits > 0);

    let warm = service.compile_batch(&jobs);
    assert_eq!(warm.stats.compiled, jobs.len());
    assert!(
        warm.stats.solver_invocations() < cold.stats.solver_invocations(),
        "warm batch must perform strictly fewer solves: warm {} vs cold {}",
        warm.stats.solver_invocations(),
        cold.stats.solver_invocations()
    );
    // Everything the DP asks for was cached by the cold pass.
    assert_eq!(warm.stats.solver_invocations(), 0);
    assert!(warm.stats.hit_rate() > cold.stats.hit_rate());

    // Cache hits are exact: warm results are bit-identical to cold ones.
    for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
        assert_eq!(c.name, w.name);
        let (c, w) = (c.result.as_ref().unwrap(), w.result.as_ref().unwrap());
        assert_eq!(c.predicted_latency, w.predicted_latency, "{}", c.flow.name());
        assert_eq!(c.segments.len(), w.segments.len());
    }
}

#[test]
fn shared_cache_transfers_between_services_but_not_architectures() {
    // A small fleet is enough to exercise the transfer semantics.
    let jobs: Vec<BatchJob> = registry_fleet()
        .into_iter()
        .filter(|j| j.name == "bert-base" || j.name == "mobilenetv2")
        .collect();
    assert_eq!(jobs.len(), 2);

    let donor = registry_service(1);
    let cold = donor.compile_batch(&jobs);

    // Same arch, warm cache handed over: zero solves.
    let same_arch = CompileService::with_cache(
        presets::dynaplasia(),
        fast_options(1),
        std::sync::Arc::clone(donor.cache()),
    );
    let transferred = same_arch.compile_batch(&jobs);
    assert_eq!(transferred.stats.solver_invocations(), 0);

    // Different arch, same cache object: fingerprints differ, so every
    // prior entry is effectively invalidated and real solves happen.
    let other_arch = CompileService::with_cache(
        presets::prime(),
        fast_options(1),
        std::sync::Arc::clone(donor.cache()),
    );
    let foreign = other_arch.compile_batch(&jobs);
    assert!(
        foreign.stats.solver_invocations() > 0,
        "a different chip must not reuse allocations sized for another"
    );
    let _ = cold;
}
