//! The static verifier across the registry, plus mutation-kill testing.
//!
//! Three layers:
//!
//! * **Registry soundness** — every registry model, compiled by every
//!   backend on the DynaPlasia chip, verifies with zero findings (not
//!   even warnings), and the opt-in `VerifyStage` accepts the same
//!   programs while recording its diagnostic event.
//! * **Property sampling** — compiled MLPs verify clean across all
//!   three architecture presets (vendored proptest: deterministic
//!   sampling, no shrinking).
//! * **Mutation kill** — every applicable defect-injection operator
//!   (`verify::mutate`) produces a mutant that the verifier rejects
//!   with the operator's expected rule id: no surviving mutants.

use proptest::prelude::*;

use cmswitch::arch::{presets, DualModeArch};
use cmswitch::compiler::verify::{mutate, rules, Severity, Verifier};
use cmswitch::compiler::CompiledProgram;
use cmswitch::models::registry;
use cmswitch::prelude::*;

fn preset(idx: usize) -> DualModeArch {
    match idx % 3 {
        0 => presets::dynaplasia(),
        1 => presets::prime(),
        _ => presets::tiny(),
    }
}

fn compile_registry(kind: BackendKind, arch: &DualModeArch) -> Vec<(String, CompiledProgram)> {
    let session = Session::builder(arch.clone()).backend_kind(kind).build();
    registry::ALL_MODELS
        .iter()
        .map(|&model| {
            let graph = registry::build(model, 1, 16).expect("registered model builds");
            let program = session
                .compile_graph(&graph)
                .unwrap_or_else(|e| panic!("{model} fails to compile on {kind:?}: {e}"));
            (model.to_string(), program)
        })
        .collect()
}

#[test]
fn registry_verifies_clean_on_every_backend() {
    let arch = presets::dynaplasia();
    let verifier = Verifier::new();
    for kind in BackendKind::ALL {
        for (model, program) in compile_registry(kind, &arch) {
            let report = verifier.run(&program, &arch);
            assert!(
                report.is_empty(),
                "{model} on {kind:?} has findings:\n{report}"
            );
        }
    }
}

#[test]
fn verify_stage_accepts_the_registry_and_reports_counts() {
    let arch = presets::dynaplasia();
    let session = Session::builder(arch)
        .options(CompilerOptions::default().with_verify(true))
        .build();
    for &model in registry::ALL_MODELS {
        let graph = registry::build(model, 1, 16).expect("registered model builds");
        let outcome = session
            .compile(CompileRequest::new(graph).with_label(model))
            .unwrap_or_else(|e| panic!("{model} rejected by the verify stage: {e}"));
        assert_eq!(
            outcome.diagnostics.verified_counts(),
            Some((0, 0)),
            "{model}: verify stage ran but counts disagree"
        );
    }
}

#[test]
fn session_verify_matches_the_standalone_verifier() {
    let arch = presets::tiny();
    let session = Session::builder(arch.clone()).build();
    let graph = cmswitch::models::mlp::mlp(2, &[128, 256, 128]).unwrap();
    let outcome = session.compile(CompileRequest::new(graph)).unwrap();
    let via_session = session.verify(&outcome);
    let standalone = Verifier::new().run(&outcome.program, &arch);
    assert_eq!(via_session, standalone);
    assert!(via_session.is_clean());
}

/// Every applicable mutation operator must be detected — and detected by
/// the rule the operator declares, not incidentally by another lint.
#[test]
fn no_mutant_survives_the_verifier() {
    let arch = presets::dynaplasia();
    let verifier = Verifier::new();
    // Two shapes with different segment structure: a transformer and a
    // CNN, compiled by the mode-switching backend.
    let mut programs = Vec::new();
    let session = Session::builder(arch.clone()).build();
    for model in ["bert-base", "resnet18"] {
        let graph = registry::build(model, 1, 16).expect("registered model builds");
        programs.push((model, session.compile_graph(&graph).expect("compiles")));
    }
    let mlp = cmswitch::models::mlp::mlp(2, &[256, 256, 256, 64]).unwrap();
    programs.push(("mlp", session.compile_graph(&mlp).expect("compiles")));

    let mut killed: Vec<&'static str> = Vec::new();
    let mut survivors: Vec<String> = Vec::new();
    for (model, program) in &programs {
        assert!(
            verifier.run(program, &arch).is_empty(),
            "{model}: baseline program must verify clean before mutation"
        );
        for m in mutate::ALL {
            let Some(mutant) = m.apply(program) else {
                continue;
            };
            let report = verifier.run(&mutant, &arch);
            if report.has_rule(m.expected_rule()) {
                if !killed.contains(&m.name()) {
                    killed.push(m.name());
                }
            } else {
                survivors.push(format!(
                    "{model}/{}: expected {}, fired {:?}",
                    m.name(),
                    m.expected_rule(),
                    report.fired_rules()
                ));
            }
        }
    }
    assert!(survivors.is_empty(), "surviving mutants:\n{}", survivors.join("\n"));
    // All ten defect classes must have found a mutation site somewhere.
    assert_eq!(
        killed.len(),
        mutate::ALL.len(),
        "defect classes never exercised: {:?}",
        mutate::ALL
            .iter()
            .map(|m| m.name())
            .filter(|n| !killed.contains(n))
            .collect::<Vec<_>>()
    );
}

/// Deny findings fail the compile when verification is enabled; the same
/// defect sails through (into the simulator's hands) when it is not.
#[test]
fn verify_stage_is_opt_in_and_deny_fails_the_compile() {
    let arch = presets::tiny();
    let graph = cmswitch::models::mlp::mlp(1, &[128, 128, 64]).unwrap();
    // Off by default: stage names end at "emit".
    let off = Session::builder(arch.clone()).build();
    let outcome = off.compile(CompileRequest::new(graph)).unwrap();
    assert_eq!(outcome.diagnostics.verified_counts(), None);
    let names: Vec<_> = outcome
        .program
        .stats
        .stage_wall
        .iter()
        .map(|t| t.stage)
        .collect();
    assert!(!names.contains(&"verify"), "{names:?}");
    // Severity policy: the two advisory rules warn, everything denies.
    assert_eq!(rules::severity(rules::DEAD_WEIGHT_LOAD), Severity::Warn);
    assert_eq!(rules::severity(rules::REDUNDANT_SWITCH), Severity::Warn);
    for deny in [
        rules::MODE_DISCIPLINE,
        rules::USE_BEFORE_LOAD,
        rules::CAPACITY_ARRAYS,
        rules::DEP_MISSING,
        rules::RACE_CONFLICT,
        rules::PLAN_OPS,
    ] {
        assert_eq!(rules::severity(deny), Severity::Deny);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn compiled_mlps_verify_clean_on_every_preset(
        width_idx in proptest::collection::vec(0usize..5, 2..5),
        batch in 1usize..3,
        preset_idx in 0usize..3,
    ) {
        const WIDTHS: [usize; 5] = [64, 96, 128, 192, 256];
        let dims: Vec<usize> = width_idx.iter().map(|&i| WIDTHS[i]).collect();
        let arch = preset(preset_idx);
        let graph = cmswitch::models::mlp::mlp(batch, &dims).expect("mlp builds");
        let session = Session::builder(arch.clone()).build();
        let program = session.compile_graph(&graph).expect("mlp compiles");

        let report = Verifier::new().run(&program, &arch);
        prop_assert!(report.is_empty(), "findings on a clean compile:\n{report}");

        // And a representative mutation is still caught on every preset.
        if let Some(mutant) = mutate::Mutation::DropSwitch.apply(&program) {
            let report = Verifier::new().run(&mutant, &arch);
            prop_assert!(
                report.has_rule(rules::MODE_DISCIPLINE),
                "dropped switch survived on {}: {:?}",
                arch.name(),
                report.fired_rules()
            );
        }
    }
}
