//! Equivalence of the bound-pruned segmentation DP with the exhaustive
//! reference: bit-identical `SegmentationResult` (segments and
//! `total_latency`), strictly fewer allocator solves.
//!
//! Two layers of coverage:
//!
//! * the full 9-model registry on the paper's DynaPlasia chip, full op
//!   lists (the acceptance bar: identical plans, strictly fewer solves
//!   on every transformer-class model);
//! * a property test over *all* arch presets × the registry with
//!   truncated op lists (the tiny 8-array preset would otherwise
//!   explode the partitioner on billion-parameter models — truncation
//!   keeps every preset/model pair affordable while still exercising
//!   the DP and its bounds on that pair's real shapes).

use proptest::prelude::*;

use cmswitch::arch::{presets, DualModeArch};
use cmswitch::compiler::allocation::Allocator;
use cmswitch::compiler::cost::CostModel;
use cmswitch::compiler::frontend::{lower_graph, OpList};
use cmswitch::compiler::partition::partition;
use cmswitch::compiler::segment::{segment, SegmentationResult};
use cmswitch::compiler::{AllocatorKind, CancelToken, CompilerOptions, DpMode};
use cmswitch::models::registry;

const TRANSFORMERS: &[&str] = &["bert-base", "bert-large", "llama2-7b", "opt-6.7b", "opt-13b"];

fn preset(idx: usize) -> DualModeArch {
    match idx % 3 {
        0 => presets::dynaplasia(),
        1 => presets::prime(),
        _ => presets::tiny(),
    }
}

/// Keeps the first `cap` ops and the dependencies among them.
fn truncate(list: &OpList, cap: usize) -> OpList {
    let cap = cap.min(list.ops.len());
    let mut deps = Vec::new();
    let mut dep_bytes = Vec::new();
    for (&(p, c), &b) in list.deps.iter().zip(&list.dep_bytes) {
        if p < cap && c < cap {
            deps.push((p, c));
            dep_bytes.push(b);
        }
    }
    OpList {
        ops: list.ops[..cap].to_vec(),
        deps,
        dep_bytes,
    }
}

/// Runs one DP mode on a partitioned list; returns the result and the
/// allocator-solve count (MIP + fast).
fn run_dp(
    list: &OpList,
    arch: &DualModeArch,
    mode: DpMode,
    allocator: AllocatorKind,
) -> (SegmentationResult, u64) {
    let opts = CompilerOptions::default()
        .with_dp_mode(mode)
        .with_allocator(allocator);
    let cm = CostModel::new(arch);
    let alloc = Allocator::new(CostModel::new(arch), opts.allocator, opts.reuse_cache);
    let res = segment(list, &alloc, &cm, &opts, &CancelToken::new()).expect("feasible schedule");
    let (mip, fast, _) = alloc.stats.snapshot();
    (res, mip + fast)
}

fn assert_identical(ex: &SegmentationResult, pr: &SegmentationResult, what: &str) {
    assert_eq!(ex.segments, pr.segments, "segments differ: {what}");
    assert_eq!(
        ex.total_latency.to_bits(),
        pr.total_latency.to_bits(),
        "total_latency differs: {what} ({} vs {})",
        ex.total_latency,
        pr.total_latency
    );
}

#[test]
fn pruned_dp_identical_on_full_registry_with_fewer_solves() {
    let arch = presets::dynaplasia();
    for &model in registry::ALL_MODELS {
        let graph = registry::build(model, 1, 16).expect("registered model");
        let list = lower_graph(&graph, &arch).expect("lowers");
        let list = partition(&list, &arch, 1.0).expect("partitions");
        // The fast allocator keeps the exhaustive reference affordable in
        // debug builds; the DP logic under test is allocator-agnostic and
        // the MIP path is covered by the prefix test below and the core
        // unit tests.
        let (ex, s_ex) = run_dp(&list, &arch, DpMode::Exhaustive, AllocatorKind::Fast);
        let (pr, s_pr) = run_dp(&list, &arch, DpMode::BoundPruned, AllocatorKind::Fast);
        assert_identical(&ex, &pr, model);
        assert!(
            s_pr <= s_ex,
            "{model}: pruned DP may never solve more ({s_pr} vs {s_ex})"
        );
        assert!(
            pr.dp.skipped() > 0,
            "{model}: expected some windows skipped without a solve"
        );
        if TRANSFORMERS.contains(&model) {
            assert!(
                s_pr < s_ex,
                "{model}: transformer-class models must strictly drop solves \
                 (pruned {s_pr} vs exhaustive {s_ex})"
            );
        }
        println!(
            "{model:>12}: solves {s_ex} -> {s_pr}, windows {} ({} infeasible-skipped, {} bound-pruned)",
            pr.dp.windows, pr.dp.infeasible_skipped, pr.dp.bound_pruned
        );
    }
}

#[test]
fn pruned_dp_identical_under_mip_allocator_on_transformer_prefix() {
    // The MIP path (default allocator) on a real transformer prefix:
    // identical plans, no extra solves.
    let arch = presets::dynaplasia();
    let graph = registry::build("bert-base", 1, 32).unwrap();
    let list = lower_graph(&graph, &arch).unwrap();
    let list = truncate(&partition(&list, &arch, 1.0).unwrap(), 24);
    let (ex, s_ex) = run_dp(&list, &arch, DpMode::Exhaustive, AllocatorKind::Mip);
    let (pr, s_pr) = run_dp(&list, &arch, DpMode::BoundPruned, AllocatorKind::Mip);
    assert_identical(&ex, &pr, "bert-base prefix under MIP");
    assert!(s_pr <= s_ex, "pruned {s_pr} vs exhaustive {s_ex}");
}

// --- Warm-start soundness ---------------------------------------------
//
// The parallel DP feeds `MipProblem::set_warm_start` from neighboring
// windows' solutions. That is only sound if an injected warm start can
// never make the solver return a *worse* objective than a cold solve —
// a warm start may only seed the incumbent, never truncate the search
// below the cold optimum (the solver runs with `relative_gap = 0` by
// default, so "no worse" holds to integer tolerance).

use cmswitch::solver::{MipProblem, Relation};

/// A small random bounded-knapsack MIP: maximize Σ cᵢxᵢ subject to
/// Σ wᵢxᵢ ≤ cap, 0 ≤ xᵢ ≤ ubᵢ integer. Always feasible (x = 0).
fn knapsack(items: &[(f64, f64, u8)], cap: f64) -> MipProblem {
    let mut mip = MipProblem::new();
    let mut terms = Vec::new();
    for &(value, weight, ub) in items {
        let v = mip.add_int_var(0.0, f64::from(ub), value);
        terms.push((v, weight));
    }
    mip.add_constraint(terms, Relation::Le, cap).unwrap();
    mip
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn any_injected_warm_start_is_never_worse_than_the_cold_solve(
        n_items in 1usize..5,
        item_values in proptest::collection::vec(1.0f64..20.0, 4..5),
        item_weights in proptest::collection::vec(1.0f64..10.0, 4..5),
        item_ubs in proptest::collection::vec(1u8..4, 4..5),
        cap in 1.0f64..30.0,
        guess in proptest::collection::vec(0u8..4, 4..5),
    ) {
        let items: Vec<(f64, f64, u8)> = (0..n_items)
            .map(|i| (item_values[i], item_weights[i], item_ubs[i]))
            .collect();
        let cold = knapsack(&items, cap).solve().expect("x = 0 is feasible");
        let mut warm_mip = knapsack(&items, cap);
        let values: Vec<f64> = guess[..items.len()]
            .iter()
            .map(|&g| f64::from(g))
            .collect();
        let feasible = warm_mip.check_feasible(&values);
        prop_assert!(warm_mip.set_warm_start(values), "length always matches");
        let warm = warm_mip.solve().expect("warm start never loses feasibility");
        prop_assert!(
            warm.objective >= cold.objective - 1e-6,
            "warm start degraded the solve: {} < {} (seed feasible: {})",
            warm.objective, cold.objective, feasible.is_some()
        );
        if feasible.is_none() {
            // An infeasible seed must be ignored outright: same solution
            // as cold, and the solver must not claim it used the seed.
            prop_assert!(!warm.used_warm_start);
            prop_assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
            prop_assert_eq!(&warm.values, &cold.values);
        }
    }
}

#[test]
fn deliberately_infeasible_warm_start_is_rejected_without_changing_the_solution() {
    // One item, weight 2, capacity 3: x = 3 violates the knapsack row.
    let items = [(5.0, 2.0, 3u8)];
    let cold = knapsack(&items, 3.0).solve().unwrap();
    let mut mip = knapsack(&items, 3.0);
    assert!(mip.check_feasible(&[3.0]).is_none(), "seed must violate capacity");
    assert!(mip.set_warm_start(vec![3.0]), "right length, so accepted for the attempt");
    let warm = mip.solve().unwrap();
    assert!(!warm.used_warm_start, "infeasible seed may not claim credit");
    assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
    assert_eq!(warm.values, cold.values);
    assert_eq!(cold.values[0].round() as i64, 1, "optimum packs one item");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(36))]
    #[test]
    fn pruned_dp_identical_across_presets_and_registry(
        preset_idx in 0usize..3,
        model_idx in 0usize..9,
        lowered_cap in 3usize..8,
        seq in 8usize..33,
    ) {
        let arch = preset(preset_idx);
        let model = registry::ALL_MODELS[model_idx];
        let graph = registry::build(model, 1, seq).expect("registered model");
        let lowered = lower_graph(&graph, &arch).expect("lowers");
        // Truncate before *and* after partitioning: billion-parameter
        // models on the tiny preset would otherwise shatter into tens of
        // thousands of sub-operators.
        let lowered = truncate(&lowered, lowered_cap);
        let list = truncate(&partition(&lowered, &arch, 1.0).expect("partitions"), 48);
        prop_assume!(list.ops.iter().all(|o| o.min_tiles <= arch.n_arrays()));
        let (ex, s_ex) = run_dp(&list, &arch, DpMode::Exhaustive, AllocatorKind::Fast);
        let (pr, s_pr) = run_dp(&list, &arch, DpMode::BoundPruned, AllocatorKind::Fast);
        prop_assert_eq!(&ex.segments, &pr.segments);
        prop_assert_eq!(ex.total_latency.to_bits(), pr.total_latency.to_bits());
        prop_assert!(s_pr <= s_ex, "{} on {}: {} vs {}", model, arch.name(), s_pr, s_ex);
    }
}
