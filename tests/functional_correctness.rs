//! Functional correctness across crates: the int8 CIM execution semantics
//! (what compute-mode arrays do, §2.1.2) against the f32 reference —
//! the role the PyTorch comparison plays in §5.1.

use std::collections::HashMap;

use cmswitch::graph::{GraphBuilder, NodeId};
use cmswitch::sim::functional::{execute, Precision};
use cmswitch::tensor::Tensor;

fn compare(graph: &cmswitch::graph::Graph, inputs: HashMap<NodeId, Tensor>, rel_tol: f32) {
    let exact = execute(graph, &inputs, Precision::F32).unwrap();
    let quant = execute(graph, &inputs, Precision::Int8).unwrap();
    for out in graph.outputs() {
        let e = &exact[&out];
        let q = &quant[&out];
        let scale = e.data().iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1.0);
        let diff = e.max_abs_diff(q).unwrap();
        assert!(
            diff <= rel_tol * scale,
            "{}: rel error {} exceeds {rel_tol}",
            graph.name(),
            diff / scale
        );
    }
}

#[test]
fn mlp_graph_matches_reference() {
    let g = cmswitch::models::mlp::mlp(2, &[32, 64, 32, 8]).unwrap();
    let mut inputs = HashMap::new();
    inputs.insert(NodeId(0), Tensor::random(vec![2, 32], 11));
    compare(&g, inputs, 0.25);
}

#[test]
fn small_cnn_matches_reference() {
    let mut b = GraphBuilder::new("small-cnn");
    let x = b.input("x", vec![1, 3, 16, 16]);
    let c1 = b.conv2d("c1", x, 8, 3, 1, 1).unwrap();
    let r1 = b.relu("r1", c1).unwrap();
    let p1 = b.max_pool2d("p1", r1, 2, 2).unwrap();
    let c2 = b.conv2d("c2", p1, 16, 3, 1, 1).unwrap();
    let r2 = b.relu("r2", c2).unwrap();
    let g1 = b.global_avg_pool("gap", r2).unwrap();
    b.linear("fc", g1, 10).unwrap();
    let g = b.finish().unwrap();
    let mut inputs = HashMap::new();
    inputs.insert(NodeId(0), Tensor::random(vec![1, 3, 16, 16], 12));
    compare(&g, inputs, 0.3);
}

#[test]
fn residual_block_matches_reference() {
    let mut b = GraphBuilder::new("resblock");
    let x = b.input("x", vec![1, 8, 8, 8]);
    let c1 = b.conv2d("c1", x, 8, 3, 1, 1).unwrap();
    let r1 = b.relu("r1", c1).unwrap();
    let c2 = b.conv2d("c2", r1, 8, 3, 1, 1).unwrap();
    let s = b.add("res", c2, x).unwrap();
    b.relu("r2", s).unwrap();
    let g = b.finish().unwrap();
    let mut inputs = HashMap::new();
    inputs.insert(NodeId(0), Tensor::random(vec![1, 8, 8, 8], 13));
    compare(&g, inputs, 0.3);
}

#[test]
fn tiny_transformer_block_matches_reference() {
    let cfg = cmswitch::models::transformer::TransformerConfig {
        name: "tiny".into(),
        layers: 1,
        hidden: 32,
        heads: 4,
        ffn_hidden: 64,
        vocab: 50,
        gated_ffn: false,
        lm_head: false,
    };
    let g = cmswitch::models::transformer::stack(&cfg, 1, 8).unwrap();
    let mut inputs = HashMap::new();
    // Token ids as float values.
    inputs.insert(
        NodeId(0),
        Tensor::from_vec(vec![1, 8], (0..8).map(|i| (i * 5 % 50) as f32).collect()).unwrap(),
    );
    // Transformers chain many matmuls; int8 noise compounds, so the band
    // is wider but still must stay in the same ballpark.
    compare(&g, inputs, 0.6);
}

#[test]
fn depthwise_mobilenet_block_matches_reference() {
    let mut b = GraphBuilder::new("dwblock");
    let x = b.input("x", vec![1, 8, 12, 12]);
    let e = b.conv2d("expand", x, 16, 1, 1, 0).unwrap();
    let r = b.relu("erelu", e).unwrap();
    let d = b.conv2d_grouped("dw", r, 16, 3, 1, 1, 16).unwrap();
    let r2 = b.relu("drelu", d).unwrap();
    b.conv2d("project", r2, 8, 1, 1, 0).unwrap();
    let g = b.finish().unwrap();
    let mut inputs = HashMap::new();
    inputs.insert(NodeId(0), Tensor::random(vec![1, 8, 12, 12], 14));
    compare(&g, inputs, 0.35);
}
