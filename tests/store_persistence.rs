//! The persistent artifact store across (simulated) process restarts.
//!
//! The contract under test is the tentpole acceptance criterion: after
//! one priming run, a **fresh session over the same store directory**
//! compiles the whole registry with *zero* allocator solves and at
//! least 3× faster than the cold run — plus the integrity half of the
//! story: corrupt or verifier-rejected artifacts are never served, but
//! recompiled and overwritten in place.

use std::sync::Arc;
use std::time::Instant;

use cmswitch::arch::presets;
use cmswitch::compiler::artifact::encode_program;
use cmswitch::compiler::verify::mutate;
use cmswitch::models::registry;
use cmswitch::prelude::*;

fn temp_store(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cmswitch-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn registry_requests() -> Vec<CompileRequest> {
    registry::build_all(1, 16)
        .expect("registry builds")
        .into_iter()
        .map(|(name, graph)| CompileRequest::new(graph).with_label(name))
        .collect()
}

fn solver_invocations(report: &BatchReport) -> u64 {
    report
        .outcomes
        .iter()
        .filter_map(|o| o.result.as_ref().ok())
        .map(|p| p.stats.mip_solves + p.stats.fast_solves)
        .sum()
}

/// The headline guarantee: prime once, restart, compile the registry
/// without a single allocator invocation — and measurably faster.
#[test]
fn fresh_session_compiles_registry_with_zero_solves() {
    let dir = temp_store("zero-solve");

    let cold_wall;
    {
        let store = ArtifactStore::open(&dir).unwrap();
        let session = Session::builder(presets::dynaplasia()).store(store).build();
        let t0 = Instant::now();
        let report = session.compile_batch(&registry_requests());
        cold_wall = t0.elapsed();
        assert!(report.outcomes.iter().all(|o| o.result.is_ok()));
        assert!(
            solver_invocations(&report) > 0,
            "cold run must actually solve"
        );
        session.persist_alloc_snapshot().unwrap();
    }

    // The restart: a brand-new store handle and session, nothing shared
    // but the directory — in-memory caches start empty.
    let store = ArtifactStore::open(&dir).unwrap();
    let session = Session::builder(presets::dynaplasia())
        .store(Arc::clone(&store))
        .build();
    let t0 = Instant::now();
    let report = session.compile_batch(&registry_requests());
    let warm_wall = t0.elapsed();

    assert!(report.outcomes.iter().all(|o| o.result.is_ok()));
    assert_eq!(
        solver_invocations(&report),
        0,
        "disk-warm registry compile must not invoke the allocator"
    );
    assert_eq!(report.stats.store_hits, registry::ALL_MODELS.len() as u64);
    assert_eq!(store.stats().corrupt, 0);
    assert!(
        warm_wall * 3 <= cold_wall,
        "disk-warm must be at least 3x faster: cold {cold_wall:?}, warm {warm_wall:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Byte-level corruption is detected by the checksum, surfaced as a
/// `StoreCorrupt` diagnostic, recompiled — and the bad artifact is
/// overwritten so the *next* fetch hits clean.
#[test]
fn corrupt_artifact_is_recompiled_and_healed() {
    let dir = temp_store("corrupt");
    let store = ArtifactStore::open(&dir).unwrap();
    let session = Session::builder(presets::tiny())
        .store(Arc::clone(&store))
        .build();
    let graph = cmswitch::models::mlp::mlp(2, &[128, 256, 128]).unwrap();

    session.compile(CompileRequest::new(graph.clone())).unwrap();
    let key = StoreKey::for_compile(
        &presets::tiny(),
        "cmswitch",
        &CompilerOptions::default(),
        &graph,
    );
    let path = store.program_path(key);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = 32 + (bytes.len() - 32) / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    // A fresh session (cold caches) must detect the corruption, report
    // it, recompile, and overwrite the artifact.
    let session = Session::builder(presets::tiny())
        .store(Arc::clone(&store))
        .build();
    let outcome = session.compile(CompileRequest::new(graph.clone())).unwrap();
    let (hits, _misses, corrupt) = outcome.diagnostics.store_traffic();
    assert_eq!((hits, corrupt), (0, 1), "corruption must be diagnosed");
    assert!(matches!(store.fetch_program(key), StoreFetch::Hit(_)));

    // Healed: the next fresh session serves from disk again.
    let session = Session::builder(presets::tiny()).store(store).build();
    let outcome = session.compile(CompileRequest::new(graph)).unwrap();
    assert_eq!(outcome.diagnostics.store_traffic().0, 1);
    assert_eq!(outcome.stats().mip_solves + outcome.stats().fast_solves, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A well-formed artifact that fails static verification (simulated by
/// writing a mutated program under the correct key) is rejected before
/// serving: decoded bytes are never trusted without `core::verify`.
#[test]
fn verifier_rejected_artifact_is_never_served() {
    let dir = temp_store("verify-reject");
    let store = ArtifactStore::open(&dir).unwrap();
    let session = Session::builder(presets::tiny())
        .store(Arc::clone(&store))
        .build();
    let graph = cmswitch::models::mlp::mlp(2, &[128, 256, 128]).unwrap();
    let honest = session.compile(CompileRequest::new(graph.clone())).unwrap();

    // Craft a checksum-valid but semantically broken artifact: apply
    // the first defect-injection operator that both mutates this
    // program and draws a deny finding.
    let arch = presets::tiny();
    let verifier = Verifier::new();
    let mutant = mutate::ALL
        .iter()
        .filter_map(|m| m.apply(&honest.program))
        .find(|p| verifier.run(p, &arch).deny_count() > 0)
        .expect("some mutation operator produces a deny-able program");
    let key = StoreKey::for_compile(&arch, "cmswitch", &CompilerOptions::default(), &graph);
    std::fs::write(store.program_path(key), encode_program(&mutant)).unwrap();

    let session = Session::builder(presets::tiny())
        .store(Arc::clone(&store))
        .build();
    let outcome = session.compile(CompileRequest::new(graph)).unwrap();
    let (hits, _misses, corrupt) = outcome.diagnostics.store_traffic();
    assert_eq!(hits, 0, "a verifier-rejected artifact must not be served");
    assert_eq!(corrupt, 1, "the rejection must be diagnosed");
    // And the recompile overwrote the poisoned entry with an honest one.
    match store.fetch_program(key) {
        StoreFetch::Hit(p) => assert_eq!(verifier.run(&p, &arch).deny_count(), 0),
        other => panic!("store should hold a healed artifact, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The allocation-cache snapshot alone (no program artifacts) already
/// eliminates solver work: L2 promotion into a fresh L1.
#[test]
fn alloc_snapshot_alone_warms_a_fresh_session() {
    let dir = temp_store("snapshot-only");
    {
        let store = ArtifactStore::open(&dir).unwrap();
        let session = Session::builder(presets::tiny())
            .store(Arc::clone(&store))
            .build();
        let graph = cmswitch::models::mlp::mlp(3, &[256, 256, 256]).unwrap();
        session.compile(CompileRequest::new(graph)).unwrap();
        assert!(session.persist_alloc_snapshot().unwrap() > 0);
        // Drop the program artifacts, keep only the snapshot.
        std::fs::remove_dir_all(store.root().join("programs")).unwrap();
    }

    let store = ArtifactStore::open(&dir).unwrap();
    let session = Session::builder(presets::tiny()).store(store).build();
    let graph = cmswitch::models::mlp::mlp(3, &[256, 256, 256]).unwrap();
    let outcome = session.compile(CompileRequest::new(graph)).unwrap();
    assert_eq!(
        outcome.stats().mip_solves + outcome.stats().fast_solves,
        0,
        "snapshot-promoted cache entries must satisfy every allocation"
    );
    assert!(outcome.stats().cache_hits > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
