//! Property-based integration tests: random networks and random chips
//! must always produce valid, capacity-respecting, simulatable plans.

use proptest::prelude::*;

use cmswitch::arch::DualModeArch;
use cmswitch::prelude::*;

fn random_arch(seed: usize) -> DualModeArch {
    // A small family of valid chips.
    let n = [6, 8, 12, 16][seed % 4];
    let size = [32, 64, 96][seed % 3];
    DualModeArch::builder(format!("prop-{seed}"))
        .n_arrays(n)
        .array_size(size, size)
        .buffer_bytes(2048)
        .internal_bw(4)
        .extern_bw(16)
        .buffer_bw(16)
        .compute_pass_cycles(16)
        .switch_cycles(1, 1)
        .write_parallelism(4)
        .build()
        .expect("valid chip")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn random_mlps_compile_to_valid_plans(
        seed in 0usize..1000,
        batch in 1usize..5,
        widths in proptest::collection::vec(16usize..200, 2..6),
    ) {
        let arch = random_arch(seed);
        let graph = cmswitch::models::mlp::mlp(batch, &widths).unwrap();
        let session = Session::builder(arch.clone()).build();
        let program = match session.compile_graph(&graph) {
            Ok(p) => p,
            // Tiny chips may legitimately reject enormous layers.
            Err(cmswitch::compiler::CompileError::OperatorTooLarge { .. }) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("compile failed: {e}"))),
        };

        // Invariant 1: segments tile the op list contiguously.
        let mut next = 0usize;
        for seg in &program.segments {
            prop_assert_eq!(seg.range.0, next);
            next = seg.range.1 + 1;
        }
        prop_assert_eq!(next, program.ops.len());

        // Invariant 2: every segment respects chip capacity (Eq. 8).
        for seg in &program.segments {
            prop_assert!(seg.alloc.arrays_used() <= arch.n_arrays());
        }

        // Invariant 3: the flow validates and simulates to a finite time.
        cmswitch::metaop::validate(&program.flow)
            .map_err(|e| TestCaseError::fail(format!("invalid flow: {e}")))?;
        let report = simulate(&program.flow, &arch)
            .map_err(|e| TestCaseError::fail(format!("sim failed: {e}")))?;
        prop_assert!(report.total_cycles.is_finite() && report.total_cycles > 0.0);

        // Invariant 4: prediction and simulation agree to within 2x.
        let ratio = report.total_cycles / program.predicted_latency;
        prop_assert!((0.4..2.5).contains(&ratio), "sim/predicted {ratio}");
    }

    #[test]
    fn flows_roundtrip_through_text(seed in 0usize..300) {
        let arch = random_arch(seed);
        let widths = [64usize, 96, 64];
        let graph = cmswitch::models::mlp::mlp(1 + seed % 3, &widths).unwrap();
        let program = Session::builder(arch).build().compile_graph(&graph)
            .unwrap();
        let text = print_flow(&program.flow);
        let reparsed = cmswitch::metaop::parse(&text).unwrap();
        prop_assert_eq!(program.flow, reparsed);
    }

    #[test]
    fn allocator_kinds_agree_on_feasibility(seed in 0usize..200) {
        let arch = random_arch(seed);
        let widths = [32usize + (seed % 7) * 16, 64, 48];
        let graph = cmswitch::models::mlp::mlp(2, &widths).unwrap();
        let mip = Session::builder(arch.clone()).build().compile_graph(&graph);
        let fast = Session::builder(arch)
            .options(CompilerOptions::default().with_allocator(cmswitch::compiler::AllocatorKind::Fast))
            .build()
            .compile_graph(&graph);
        prop_assert_eq!(mip.is_ok(), fast.is_ok());
        if let (Ok(m), Ok(f)) = (mip, fast) {
            // Same DP, allocators optimizing the same objective: totals
            // must be within a small band of each other.
            let ratio = m.predicted_latency / f.predicted_latency;
            prop_assert!((0.7..1.4).contains(&ratio), "mip/fast {ratio}");
        }
    }
}
