//! Smoke test: backend selection exposed through the facade crate —
//! `BackendKind` parsing, `backend_for` instantiation, the session
//! builder's by-kind/by-name selection, and the deprecated `by_name`
//! shim (now returning `Result` with a suggestion-bearing error).

#![allow(deprecated)] // This suite intentionally exercises the `by_name` shim.

use cmswitch::prelude::*;

#[test]
fn backend_for_resolves_every_published_kind() {
    for kind in BackendKind::ALL {
        let backend = backend_for(kind, presets::tiny());
        assert_eq!(backend.name(), kind.name());
    }
}

#[test]
fn session_builder_selects_backends_by_kind() {
    for kind in BackendKind::ALL {
        let session = Session::builder(presets::tiny()).backend_kind(kind).build();
        assert_eq!(session.backend_name(), kind.name());
    }
}

#[test]
fn by_name_shim_resolves_all_published_backends() {
    for name in ["puma", "occ", "cim-mlc", "cmswitch"] {
        let backend = by_name(name, presets::tiny())
            .unwrap_or_else(|e| panic!("backend {name:?} must resolve: {e}"));
        assert_eq!(backend.name(), name);
    }
}

#[test]
fn unknown_names_error_with_the_known_backend_list() {
    for bogus in ["", "gpu", "CMSWITCH", "cim_mlc", "puma "] {
        let Err(err) = by_name(bogus, presets::tiny()) else {
            panic!("unknown backend {bogus:?} must not resolve");
        };
        assert_eq!(err.requested(), bogus);
        let msg = err.to_string();
        assert!(
            msg.contains("known backends: puma, occ, cim-mlc, cmswitch"),
            "error must suggest the known names, got: {msg}"
        );
        // The same suggestion text backs `BackendKind::from_name`.
        assert_eq!(BackendKind::from_name(bogus), Err(err));
    }
}
