//! Smoke test: the backend registry exposed through the facade crate
//! resolves every published backend name and rejects unknown ones.

use cmswitch::prelude::*;

#[test]
fn by_name_resolves_all_published_backends() {
    for name in ["puma", "occ", "cim-mlc", "cmswitch"] {
        let backend = by_name(name, presets::tiny())
            .unwrap_or_else(|| panic!("backend {name:?} must resolve"));
        assert_eq!(backend.name(), name);
    }
}

#[test]
fn by_name_rejects_unknown_names() {
    for bogus in ["", "gpu", "CMSWITCH", "cim_mlc", "puma "] {
        assert!(
            by_name(bogus, presets::tiny()).is_none(),
            "unknown backend {bogus:?} must not resolve"
        );
    }
}
