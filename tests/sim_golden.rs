//! Golden snapshots of the event-driven simulator over the full model
//! registry.
//!
//! Pins the engine-report summaries (total latency, energy, switch
//! count) for all 9 registry models compiled on the default DynaPlasia
//! preset with default compiler options. The numbers are fully
//! deterministic — the segmentation DP is exact, code generation is
//! deterministic, and the event schedule depends only on the emitted
//! flow — so any drift here means compiler or simulator behavior
//! actually changed.
//!
//! Regenerating after an *intentional* change:
//!
//! ```text
//! CMSWITCH_BLESS=1 cargo test --test sim_golden
//! ```
//!
//! then review and commit the updated `tests/golden/sim_registry.txt`.

use std::fmt::Write as _;

use cmswitch::arch::presets;
use cmswitch::models::registry;
use cmswitch::prelude::*;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/sim_registry.txt"
);

/// One line per registry model: pipelined cycles, total energy and the
/// number of array mode switches, printed with 9 significant digits.
fn render() -> String {
    let session = Session::builder(presets::dynaplasia()).build();
    let mut out = String::new();
    for &model in registry::ALL_MODELS {
        let graph = registry::build(model, 1, 16).expect("registered model builds");
        let outcome = session
            .compile(CompileRequest::new(graph).with_label(model))
            .expect("registered model compiles");
        let sim = session.simulate(&outcome).expect("compiled flow simulates");
        writeln!(
            out,
            "{model} cycles={:.9e} energy_pj={:.9e} switches={}",
            sim.report.total_cycles,
            sim.report.energy.total_pj(),
            sim.report.switches_to_compute + sim.report.switches_to_memory,
        )
        .expect("writing to a String cannot fail");
    }
    out
}

#[test]
fn registry_engine_summaries_match_golden() {
    let current = render();
    if std::env::var_os("CMSWITCH_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &current).expect("write golden snapshot");
        eprintln!("blessed {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect(
        "golden snapshot missing; regenerate with \
         `CMSWITCH_BLESS=1 cargo test --test sim_golden`",
    );
    assert_eq!(
        golden, current,
        "engine summaries drifted from tests/golden/sim_registry.txt; if \
         the change is intentional, regenerate with CMSWITCH_BLESS=1 and \
         commit the diff"
    );
}
