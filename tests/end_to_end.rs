//! End-to-end integration: models → compiler/baselines → simulator,
//! checking the paper's headline orderings hold across the stack.

use cmswitch::arch::presets;
use cmswitch::baselines::{backend_for, BackendKind};
use cmswitch::bench::harness::run_workload;
use cmswitch::bench::workloads::build;
use cmswitch::prelude::*;

#[test]
fn every_benchmark_compiles_and_simulates_on_dynaplasia() {
    let arch = presets::dynaplasia();
    for model in ["mobilenetv2", "resnet18"] {
        let w = build(model, 1, 0, 0, 1.0, 1).unwrap();
        for backend_name in ["puma", "occ", "cim-mlc", "cmswitch"] {
            let backend = backend_for(BackendKind::from_name(backend_name).expect("known backend"), arch.clone());
            let r = run_workload(backend.as_ref(), &w)
                .unwrap_or_else(|e| panic!("{model}/{backend_name}: {e}"));
            assert!(
                r.cycles.is_finite() && r.cycles > 0.0,
                "{model}/{backend_name} produced {} cycles",
                r.cycles
            );
        }
    }
    // VGG16 is the largest CNN (13 partitioned FC chunks); exercise it on
    // the two backends the paper's headline comparison needs.
    let w = build("vgg16", 1, 0, 0, 1.0, 1).unwrap();
    for backend_name in ["cim-mlc", "cmswitch"] {
        let backend = backend_for(BackendKind::from_name(backend_name).expect("known backend"), arch.clone());
        let r = run_workload(backend.as_ref(), &w)
            .unwrap_or_else(|e| panic!("vgg16/{backend_name}: {e}"));
        assert!(r.cycles > 0.0);
    }
}

#[test]
fn transformers_compile_and_simulate_depth_scaled() {
    let arch = presets::dynaplasia();
    for model in ["bert-base", "bert-large", "llama2-7b", "opt-6.7b", "opt-13b"] {
        let w = build(model, 1, 32, 32, 0.06, 1).unwrap();
        let backend = backend_for(BackendKind::CmSwitch, arch.clone());
        let r = run_workload(backend.as_ref(), &w).unwrap();
        assert!(r.cycles > 0.0, "{model}");
    }
}

#[test]
fn cmswitch_dominates_mlc_across_benchmark_sweep() {
    // The dual-mode space strictly contains the all-compute space, so
    // under the shared cost model CMSwitch must never lose by more than
    // model/simulator divergence noise (2%).
    let arch = presets::dynaplasia();
    for (model, inl, outl) in [
        ("bert-large", 64, 0),
        ("opt-6.7b", 64, 64),
        ("resnet18", 0, 0),
    ] {
        let w = build(model, 2, inl, outl, 0.06, 1).unwrap();
        let mlc = backend_for(BackendKind::CimMlc, arch.clone());
        let ours = backend_for(BackendKind::CmSwitch, arch.clone());
        let rm = run_workload(mlc.as_ref(), &w).unwrap();
        let ro = run_workload(ours.as_ref(), &w).unwrap();
        assert!(
            ro.cycles <= rm.cycles * 1.02,
            "{model}: cmswitch {} vs mlc {}",
            ro.cycles,
            rm.cycles
        );
    }
}

#[test]
fn decode_heavy_workload_shows_dual_mode_gain() {
    // Paper Fig. 16 regime: batched generative inference with a long
    // sequence is where dual-mode switching pays off most.
    let arch = presets::dynaplasia();
    let w = build("opt-6.7b", 8, 256, 256, 0.06, 2).unwrap();
    let mlc = backend_for(BackendKind::CimMlc, arch.clone());
    let ours = backend_for(BackendKind::CmSwitch, arch);
    let rm = run_workload(mlc.as_ref(), &w).unwrap();
    let ro = run_workload(ours.as_ref(), &w).unwrap();
    let speedup = rm.cycles / ro.cycles;
    assert!(
        speedup > 1.1,
        "expected >1.1x dual-mode gain on decode-heavy workload, got {speedup:.3}"
    );
    assert!(
        ro.memory_ratio > 0.05,
        "CMSwitch should hold a visible share of arrays in memory mode, got {}",
        ro.memory_ratio
    );
}

#[test]
fn compiled_flows_always_validate_and_roundtrip() {
    let arch = presets::dynaplasia();
    for model in ["resnet18", "bert-base"] {
        let w = build(model, 1, 32, 0, 0.06, 1).unwrap();
        let g = match &w {
            cmswitch::bench::workloads::Workload::Single(g) => g.clone(),
            cmswitch::bench::workloads::Workload::Generative(gen) => gen.prefill.clone(),
        };
        let program = Session::builder(arch.clone()).build().compile_graph(&g)
            .unwrap();
        cmswitch::metaop::validate(&program.flow).unwrap();
        let text = print_flow(&program.flow);
        let reparsed = cmswitch::metaop::parse(&text).unwrap();
        assert_eq!(program.flow, reparsed, "{model} flow does not roundtrip");
    }
}

#[test]
fn predicted_latency_tracks_simulation() {
    // The DP's analytic total and the simulator's execution of the
    // emitted flow implement the same model; they must agree closely.
    let arch = presets::dynaplasia();
    for model in ["resnet18", "vgg11"] {
        let w = build(model, 1, 0, 0, 1.0, 1).unwrap();
        let g = match &w {
            cmswitch::bench::workloads::Workload::Single(g) => g.clone(),
            _ => unreachable!("cnn"),
        };
        let program = Session::builder(arch.clone()).build().compile_graph(&g)
            .unwrap();
        let report = simulate(&program.flow, &arch).unwrap();
        let ratio = report.total_cycles / program.predicted_latency;
        assert!(
            (0.5..2.0).contains(&ratio),
            "{model}: sim/predicted = {ratio:.3}"
        );
    }
}
