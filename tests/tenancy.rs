//! Integration tests for multi-tenant co-scheduling (`sim::tenancy`):
//! determinism across solve-worker counts, energy conservation across
//! tenants, and mid-flight re-segmentation equivalence with cold
//! compilation.

use cmswitch::models::registry;
use cmswitch::models::transformer::{decode_step, TransformerConfig};
use cmswitch::prelude::*;
use cmswitch::sim::{DecodeReport, TenancyError};

fn tiny_llm(name: &str) -> TransformerConfig {
    TransformerConfig {
        name: name.into(),
        layers: 2,
        hidden: 128,
        heads: 4,
        ffn_hidden: 256,
        vocab: 512,
        gated_ffn: false,
        lm_head: true,
    }
}

/// Time-sliced co-simulation of two registry models is bit-identical
/// no matter how many solver workers compiled the programs — and
/// strictly beats running the tenants back-to-back.
#[test]
fn time_sliced_cosim_is_deterministic_across_solve_workers() {
    let arch = presets::dynaplasia();
    let reports: Vec<TenancyReport> = [1usize, 2, 4]
        .into_iter()
        .map(|workers| {
            let session = Session::builder(arch.clone())
                .options(CompilerOptions::default().with_solve_workers(workers))
                .build();
            let bert = session
                .compile_graph(&registry::build("bert-base", 1, 16).unwrap())
                .unwrap();
            let resnet = session
                .compile_graph(&registry::build("resnet18", 1, 16).unwrap())
                .unwrap();
            session
                .co_simulate(
                    &[
                        TenantProgram::new("bert-base", &bert),
                        TenantProgram::new("resnet18", &resnet),
                    ],
                    CoSimOptions::default(),
                )
                .unwrap()
        })
        .collect();

    let reference = &reports[0];
    // The acceptance bar: co-scheduling two tenants on one dynaplasia
    // chip must outrun serializing them.
    assert!(
        reference.total_cycles < reference.serialized_cycles,
        "co-scheduled {} must beat serialized {}",
        reference.total_cycles,
        reference.serialized_cycles
    );
    assert!(reference.speedup() > 1.0);
    assert!(reference.fairness > 0.0 && reference.fairness <= 1.0);
    for report in &reports[1..] {
        // `TenancyReport` is PartialEq over f64 fields: bit-identity.
        assert_eq!(report, reference);
    }
}

/// The chip-level energy report is exactly the component-wise sum of
/// the per-tenant reports — energy is schedule-invariant, so slicing
/// the chip between tenants cannot create or destroy picojoules.
#[test]
fn tenant_energies_sum_to_the_chip_total() {
    let arch = presets::dynaplasia();
    let session = Session::builder(arch).build();
    let a = session
        .compile_graph(&cmswitch::models::mlp::mlp(2, &[256, 512, 256, 64]).unwrap())
        .unwrap();
    let b = session
        .compile_graph(&registry::build("resnet18", 1, 16).unwrap())
        .unwrap();
    let report = session
        .co_simulate(
            &[TenantProgram::new("mlp", &a), TenantProgram::new("resnet", &b)],
            CoSimOptions::default(),
        )
        .unwrap();

    let mut sum = cmswitch::sim::EnergyReport::default();
    for tenant in &report.tenants {
        assert!(tenant.energy.total_pj() > 0.0);
        sum.absorb(&tenant.energy);
    }
    assert_eq!(sum, report.energy);
    assert!(report.energy.total_pj() > 0.0);
}

/// A decode loop that re-segments on every step of KV growth ends on
/// exactly the plan a cold compile at the grown sequence length
/// produces — re-segmentation is a shortcut, not a different compiler.
#[test]
fn reseg_final_plan_matches_cold_compile_at_grown_kv() {
    let arch = presets::dynaplasia();
    let session = Session::builder(arch.clone()).build();
    let cfg = tiny_llm("tenant-llm");
    let kv_start = 8;
    let steps = 3;

    let run = |session: &Session| -> Result<DecodeReport, TenancyError> {
        let cfg = cfg.clone();
        cmswitch::sim::DecodeLoop::new(session)
            .tenant(DecodeTenant::new("llm", 1, kv_start, 1024, move |kv| {
                decode_step(&cfg, 1, kv)
            }))
            .with_options(cmswitch::sim::DecodeOptions {
                steps,
                // Zero headroom: every step of KV growth forces a
                // re-segmentation.
                kv_headroom_bytes: 0,
                ..cmswitch::sim::DecodeOptions::default()
            })
            .run()
    };

    let report = run(&session).unwrap();
    assert_eq!(report.resegmentations, steps as u64);
    assert_eq!(report.diagnostics.resegmentations(), steps as u64);
    let tenant = &report.tenants[0];
    assert_eq!(tenant.final_kv, kv_start + steps);

    // Cold compile the same decode graph at the grown KV length
    // against the same partition, with a completely fresh session.
    let cold_session = Session::builder(arch.clone())
        .build()
        .partitioned(arch.n_arrays())
        .unwrap();
    let cold = cold_session
        .compile_graph(&decode_step(&cfg, 1, tenant.final_kv).unwrap())
        .unwrap();
    let hot = &tenant.final_program;
    assert_eq!(hot.flow.stmts(), cold.flow.stmts());
    assert_eq!(hot.segments, cold.segments);
    assert_eq!(hot.op_deps, cold.op_deps);
    assert_eq!(hot.predicted_latency, cold.predicted_latency);

    // Warm path: the same loop against the same parent session hits
    // the shared allocation cache — zero allocator solves end to end.
    let warm = run(&session).unwrap();
    assert_eq!(warm.solves, 0, "warm re-run must be solve-free");
    assert_eq!(warm.resegmentations, report.resegmentations);
    assert_eq!(warm.total_cycles, report.total_cycles);
}
