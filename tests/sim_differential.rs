//! Differential testing: the event engine against the sequential
//! reference model, across the full model registry.
//!
//! Both simulators price statements through the shared
//! `cmswitch-sim::model` kernel, so three relations must hold on every
//! compiled registry model:
//!
//! 1. **Dominance** — the pipelined makespan never exceeds the
//!    sequential replay (the engine only moves events *earlier*);
//! 2. **Serial equivalence** — the engine's `serialized_cycles`
//!    reproduces the sequential total bit-for-bit (same kernel, same
//!    accumulation order);
//! 3. **Energy invariance** — energy is schedule-independent, so the
//!    engine's energy report equals the flow oracle
//!    (`energy::estimate`) component for component.
//!
//! And the engine must actually *earn* its keep: at least one
//! multi-segment model must overlap strictly (`pipelined <
//! sequential`), otherwise the event machinery is dead weight.

use cmswitch::arch::presets;
use cmswitch::models::registry;
use cmswitch::prelude::*;
use cmswitch::sim::energy::{estimate, EnergyModel};

#[test]
fn engine_dominates_sequential_across_registry() {
    let arch = presets::dynaplasia();
    let session = Session::builder(arch.clone()).build();
    let engine = EventEngine::new();
    let sequential = SequentialModel;
    let energy_model = EnergyModel::default();

    let mut strict_overlaps = Vec::new();
    for &model in registry::ALL_MODELS {
        let graph = registry::build(model, 1, 16).expect("registered model builds");
        let program = session.compile_graph(&graph).expect("compiles");
        let seq = sequential
            .simulate(&program.flow, &arch)
            .expect("sequential replay");
        let eng = engine
            .simulate_program(&program, &arch)
            .expect("event schedule");

        // 1. Dominance (exact, not approximate: identical event
        //    durations, dependencies only point backwards).
        assert!(
            eng.total_cycles <= seq.total_cycles,
            "{model}: pipelined {} > sequential {}",
            eng.total_cycles,
            seq.total_cycles
        );

        // 2. Serial equivalence, bit-for-bit.
        assert_eq!(
            eng.serialized_cycles.to_bits(),
            seq.total_cycles.to_bits(),
            "{model}: serialized accounting diverged from timing::simulate \
             ({} vs {})",
            eng.serialized_cycles,
            seq.total_cycles
        );

        // 3. Energy invariance, component for component.
        let oracle = estimate(&program.flow, &arch, &energy_model);
        assert_eq!(
            eng.energy.total_pj().to_bits(),
            oracle.total_pj().to_bits(),
            "{model}: engine energy diverged from the flow oracle"
        );
        assert_eq!(eng.energy, oracle, "{model}: component mismatch");

        // Switch counts agree with the sequential replay too.
        assert_eq!(eng.switches_to_compute, seq.switches_to_compute, "{model}");
        assert_eq!(eng.switches_to_memory, seq.switches_to_memory, "{model}");

        if program.segments.len() > 1 && eng.total_cycles < seq.total_cycles {
            strict_overlaps.push((model, seq.total_cycles / eng.total_cycles));
        }
        println!(
            "{model:>12}: sequential {:.4e} -> pipelined {:.4e} ({} segments, {:.2}% hidden)",
            seq.total_cycles,
            eng.total_cycles,
            program.segments.len(),
            100.0 * eng.overlap_saved() / seq.total_cycles.max(1.0),
        );
    }

    assert!(
        !strict_overlaps.is_empty(),
        "no multi-segment registry model overlapped strictly — the event \
         engine is not pipelining anything"
    );
    println!("strict overlaps: {strict_overlaps:?}");
}
